//! Prices the staq-net reactor serving core.
//!
//! ```text
//! net-bench [--conns N] [--duration secs] [--workers N] [--seed N]
//!           [--quick] [--threaded-compare] [--emit-json path]
//!           [--baseline path]
//! ```
//!
//! Three measurements, one report (`BENCH_net.json`):
//!
//! 1. **Warm latency, low concurrency.** One connection issues warm
//!    `MeanAccess` queries for `--duration` seconds; p50/p90/p99 are
//!    reported. This is the "the reactor must not tax the common case"
//!    number: the committed baseline comparison warns when p50 drifts
//!    more than 6%.
//! 2. **Multiplexing.** Eight concurrent callers run the same closed
//!    loop twice: sharing ONE multiplexed connection, then with eight
//!    private connections. Reports both throughputs and their ratio,
//!    and hard-fails unless a scripted query mix answers bit-identically
//!    over both transports (the mux must be a pure wire optimisation).
//! 3. **Mass connections.** `--conns` simultaneous connections (default
//!    10000, `--quick` 512) against the single reactor thread — the run
//!    a thread-per-connection server degrades on or fails outright.
//!    Every connection answers one warm query; sustained throughput,
//!    connect time, and the `net.conns` peak are reported. The held
//!    count is clamped to the process fd limit (two fds per loopback
//!    connection — bench and server share the process); the remainder
//!    is churned through connect-query-close so the *served* total
//!    always reaches `--conns`.
//!
//! `--threaded-compare` additionally drives min(conns, 1024)
//! connections against the legacy thread-per-connection server to put a
//! number on what the reactor replaced (one OS thread per idle
//! connection vs one event loop).
//!
//! `--baseline` compares against a committed report and *warns* on
//! regression — it never fails the run (shared-runner timing is noisy;
//! the artifact is the trend record).

use bytes::BytesMut;
use staq_access::AccessQuery;
use staq_serve::codec::encode_response;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, MuxClient, Request, Response, ServerConfig, ServerHandle};
use staq_synth::PoiCategory;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct Args {
    conns: usize,
    duration: Duration,
    workers: usize,
    seed: u64,
    quick: bool,
    threaded_compare: bool,
    emit_json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        conns: 10_000,
        duration: Duration::from_secs(2),
        workers: 2,
        seed: 42,
        quick: false,
        threaded_compare: false,
        emit_json: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--conns" => args.conns = parse(&mut it, "--conns"),
            "--duration" => args.duration = Duration::from_secs_f64(parse(&mut it, "--duration")),
            "--workers" => args.workers = parse(&mut it, "--workers"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--quick" => args.quick = true,
            "--threaded-compare" => args.threaded_compare = true,
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--baseline" => args.baseline = Some(need(&mut it, "--baseline")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.quick {
        args.conns = args.conns.min(512);
        args.duration = args.duration.min(Duration::from_secs(1));
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: net-bench [--conns N] [--duration secs] [--workers N] [--seed N] \
         [--quick] [--threaded-compare] [--emit-json path] [--baseline path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn warm_query() -> Request {
    Request::Query { category: PoiCategory::School, query: AccessQuery::MeanAccess, approx: false }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i]
}

/// "Max open files" soft limit, from procfs; generous fallback when the
/// file is unreadable (non-Linux).
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            let line = text.lines().find(|l| l.starts_with("Max open files"))?;
            line.split_whitespace().nth(3)?.parse().ok()
        })
        .unwrap_or(1 << 20)
}

fn start_server(args: &Args, threaded: bool) -> ServerHandle {
    let engine = CityPreset::Test.engine(0.05, args.seed);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: args.workers,
        queue_depth: 1024,
        ..Default::default()
    };
    let handle = if threaded {
        let rt = std::sync::Arc::new(staq_rt::RtEngine::new(std::sync::Arc::new(engine)));
        staq_serve::serve_threaded(rt, &cfg)
    } else {
        staq_serve::serve(engine, &cfg)
    }
    .expect("bind loopback server");
    // Warm the School cache so every later query is the cheap path.
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.call(&warm_query()).expect("warm-up query");
    handle
}

// ---- part 1: warm latency at low concurrency --------------------------

struct WarmLatency {
    calls: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
}

fn bench_warm_latency(addr: SocketAddr, duration: Duration) -> WarmLatency {
    let mut c = Client::connect(addr).expect("connect");
    let req = warm_query();
    let mut samples = Vec::with_capacity(1 << 16);
    let t0 = Instant::now();
    while t0.elapsed() < duration {
        let t = Instant::now();
        c.call(&req).expect("warm call");
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    WarmLatency {
        calls: samples.len() as u64,
        p50_ns: percentile(&samples, 0.5),
        p90_ns: percentile(&samples, 0.9),
        p99_ns: percentile(&samples, 0.99),
    }
}

// ---- part 2: multiplexed vs private connections -----------------------

const MUX_CALLERS: usize = 8;

/// Runs [`MUX_CALLERS`] closed-loop callers for `duration`; `make`
/// builds each caller's per-thread call closure.
fn closed_loop_rps<F, G>(duration: Duration, make: F) -> f64
where
    F: Fn() -> G + Sync,
    G: FnMut() + Send,
{
    let total: u64 = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..MUX_CALLERS)
            .map(|_| {
                let make = &make;
                scope.spawn(move |_| {
                    let mut call = make();
                    let mut n = 0u64;
                    let t0 = Instant::now();
                    while t0.elapsed() < duration {
                        call();
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
    .unwrap();
    total as f64 / duration.as_secs_f64()
}

/// The scripted mix both transports must answer byte-for-byte equally —
/// including the one-stop route, which draws an error frame.
fn equivalence_script() -> Vec<Request> {
    vec![
        warm_query(),
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::WorstZones { k: 5 },
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::PointAccess { x: 2000.0, y: 2000.0 },
            approx: false,
        },
        Request::Measures { category: PoiCategory::School, approx: false },
        Request::AddBusRoute { stops: vec![staq_geom::Point::new(0.0, 0.0)], headway_s: 600 },
    ]
}

fn canon(resp: &Response) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode_response(resp, &mut buf);
    buf.to_vec()
}

fn assert_bit_identical(addr: SocketAddr) {
    let mux = MuxClient::connect(addr).expect("connect mux");
    let mut private = Client::connect(addr).expect("connect");
    for (i, req) in equivalence_script().iter().enumerate() {
        let a = canon(&mux.call(req).expect("mux call"));
        let b = canon(&private.call(req).expect("private call"));
        assert_eq!(a, b, "step {i}: mux and private answers diverge — the mux is not pure");
    }
}

struct MuxThroughput {
    mux_rps: f64,
    private_rps: f64,
}

fn bench_mux(addr: SocketAddr, duration: Duration) -> MuxThroughput {
    let mux = MuxClient::connect(addr).expect("connect mux");
    let mux_rps = closed_loop_rps(duration, || {
        let mux = mux.clone();
        let req = warm_query();
        move || {
            mux.call(&req).expect("mux call");
        }
    });
    let private_rps = closed_loop_rps(duration, || {
        let mut client = Client::connect(addr).expect("connect");
        let req = warm_query();
        move || {
            client.call(&req).expect("private call");
        }
    });
    MuxThroughput { mux_rps, private_rps }
}

// ---- part 3: mass connections -----------------------------------------

struct MassRun {
    requested: usize,
    held: usize,
    served: usize,
    connect_s: f64,
    sustained_rps: f64,
    peak_conns: u64,
}

fn bench_mass(addr: SocketAddr, requested: usize) -> MassRun {
    // Two fds per loopback connection (client end + server end) plus
    // headroom for the engine, listener, and stdio.
    let held_cap = (fd_limit().saturating_sub(256)) / 2;
    let held = requested.min(held_cap);
    let req = warm_query();

    let t_connect = Instant::now();
    let mut conns: Vec<Client> = (0..held)
        .map(|i| {
            Client::connect(addr).unwrap_or_else(|e| panic!("connect {i} of {held} failed: {e}"))
        })
        .collect();
    let connect_s = t_connect.elapsed().as_secs_f64();

    let t_serve = Instant::now();
    for c in &mut conns {
        c.call(&req).expect("query on held connection");
    }
    // The reactor now has every held connection open at once.
    let peak_conns = staq_obs::snapshot().gauge("net.conns").unwrap_or(0);
    // Churn the remainder so the served total reaches the request.
    for _ in held..requested {
        let mut c = Client::connect(addr).expect("churn connect");
        c.call(&req).expect("churn query");
    }
    let served = requested;
    let sustained_rps = served as f64 / t_serve.elapsed().as_secs_f64();
    drop(conns);
    MassRun { requested, held, served, connect_s, sustained_rps, peak_conns }
}

fn main() {
    let args = parse_args();

    println!("building test city (seed {}) and warming the cache...", args.seed);
    let mut server = start_server(&args, false);
    let addr = server.addr();

    let warm = bench_warm_latency(addr, args.duration);
    println!(
        "warm latency (1 conn, {} calls): p50 {}ns p90 {}ns p99 {}ns",
        warm.calls, warm.p50_ns, warm.p90_ns, warm.p99_ns
    );

    assert_bit_identical(addr);
    println!("mux vs private equivalence: bit-identical over the scripted mix");

    let mux = bench_mux(addr, args.duration);
    println!(
        "throughput ({MUX_CALLERS} callers): mux {:.0} req/s over 1 conn, \
         private {:.0} req/s over {MUX_CALLERS} conns ({:.2}x)",
        mux.mux_rps,
        mux.private_rps,
        mux.mux_rps / mux.private_rps.max(1.0)
    );

    let mass = bench_mass(addr, args.conns);
    println!(
        "mass connections: {} requested, {} held simultaneously (fd-limited), \
         {} served at {:.0} req/s sustained; connect {:.2}s; net.conns peak {}",
        mass.requested, mass.held, mass.served, mass.sustained_rps, mass.connect_s, mass.peak_conns
    );
    server.shutdown();

    let threaded = args.threaded_compare.then(|| {
        let conns = args.conns.min(1024);
        println!("threaded comparison: {} connections against thread-per-conn server...", conns);
        let mut server = start_server(&args, true);
        let run = bench_mass(server.addr(), conns);
        println!(
            "thread-per-conn: {} held = {} OS threads on the server; {:.0} req/s sustained",
            run.held, run.held, run.sustained_rps
        );
        server.shutdown();
        run
    });

    if let Some(path) = &args.baseline {
        compare_baseline(path, warm.p50_ns, mux.mux_rps);
    }

    if let Some(path) = &args.emit_json {
        let threaded_json = threaded.map_or("null".to_string(), |t| {
            format!(
                "{{\"held\":{},\"served\":{},\"sustained_rps\":{:.0}}}",
                t.held, t.served, t.sustained_rps
            )
        });
        let json = format!(
            "{{\"bench\":\"net-bench\",\"seed\":{},\"quick\":{},\"workers\":{},\
             \"warm\":{{\"calls\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}},\
             \"mux\":{{\"callers\":{MUX_CALLERS},\"mux_rps\":{:.0},\"private_rps\":{:.0},\
             \"ratio\":{:.3},\"bit_identical\":true}},\
             \"mass\":{{\"requested\":{},\"held\":{},\"served\":{},\"connect_s\":{:.3},\
             \"sustained_rps\":{:.0},\"peak_conns\":{}}},\
             \"threaded\":{threaded_json},\
             \"metrics\":{}}}",
            args.seed,
            args.quick,
            args.workers,
            warm.calls,
            warm.p50_ns,
            warm.p90_ns,
            warm.p99_ns,
            mux.mux_rps,
            mux.private_rps,
            mux.mux_rps / mux.private_rps.max(1.0),
            mass.requested,
            mass.held,
            mass.served,
            mass.connect_s,
            mass.sustained_rps,
            mass.peak_conns,
            staq_obs::snapshot().to_json(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

/// Warn-only gate: warm p50 within ±6% of the committed baseline, mux
/// throughput within 25% (throughput is noisier than latency on shared
/// runners). Prints, never exits non-zero.
fn compare_baseline(path: &str, p50_ns: u64, mux_rps: f64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("baseline: cannot read {path}, skipping comparison");
        return;
    };
    match first_json_f64(&text, "p50_ns") {
        Some(old) if old > 0.0 => {
            let drift = (p50_ns as f64 - old) / old;
            if drift.abs() > 0.06 {
                println!(
                    "WARNING: warm p50 drifted {:+.1}% vs baseline ({:.0}ns -> {p50_ns}ns, {path})",
                    100.0 * drift,
                    old
                );
            } else {
                println!(
                    "baseline warm p50: {:.0}ns -> {p50_ns}ns ({:+.1}%, within 6%)",
                    old,
                    100.0 * drift
                );
            }
        }
        _ => println!("baseline: no p50_ns in {path}"),
    }
    match first_json_f64(&text, "mux_rps") {
        Some(old) if mux_rps < old * 0.75 => {
            println!("WARNING: mux throughput regressed: {old:.0} -> {mux_rps:.0} req/s ({path})")
        }
        Some(old) => {
            println!("baseline mux throughput: {old:.0} -> {mux_rps:.0} req/s (within 25%)")
        }
        None => println!("baseline: no mux_rps in {path}"),
    }
}

/// Extracts the *first* `"key":<number>` occurrence from our own flat
/// hand-rolled report. Not a parser.
fn first_json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let val = &text[at + needle.len()..];
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

//! `staq-gateway` — a curl-able HTTP/JSON front for a staq-serve or
//! staq-shard endpoint.
//!
//! ```text
//! staq-gateway --backend host:port [--addr 127.0.0.1:8080] [--threads N]
//!              [--port-file path]
//! ```
//!
//! The gateway holds one multiplexed binary-protocol connection to the
//! backend and translates a small JSON API onto it (see
//! `staq_serve::gateway` for the routes). It owns no engine state, so
//! it boots instantly and can be restarted freely.

use staq_serve::gateway::{gateway, GatewayConfig};
use std::net::{SocketAddr, ToSocketAddrs};

struct Args {
    backend: Option<String>,
    cfg: GatewayConfig,
    port_file: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        backend: None,
        cfg: GatewayConfig { addr: "127.0.0.1:8080".into(), ..Default::default() },
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backend" => args.backend = Some(need(&mut it, "--backend")),
            "--addr" => args.cfg.addr = need(&mut it, "--addr"),
            "--threads" => args.cfg.threads = parse(&mut it, "--threads"),
            "--port-file" => args.port_file = Some(need(&mut it, "--port-file")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.cfg.threads == 0 {
        usage("--threads must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: staq-gateway --backend host:port [--addr host:port] [--threads N] \
         [--port-file path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    let Some(backend) = &args.backend else { usage("--backend is required") };
    let backend: SocketAddr = backend
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| usage(&format!("cannot resolve backend address {backend:?}")));

    let mut handle = gateway(backend, &args.cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", args.cfg.addr);
        std::process::exit(1);
    });
    eprintln!(
        "gateway on http://{} -> {backend} ({} threads); close stdin to stop",
        handle.addr(),
        args.cfg.threads
    );
    if let Some(path) = &args.port_file {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write port file {path}: {e}");
                std::process::exit(1);
            });
    }

    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    eprintln!("shutting down...");
    handle.shutdown();
}

//! The SSR solution pipeline (paper Fig. 1 / §IV).
//!
//! Stages, each individually timed because Table II prices them:
//!
//! 1. **TODAM construction** — gravity-gated trip sampling.
//! 2. **Feature extraction** — OD features from hop trees, α-aggregated to
//!    the origin level.
//! 3. **Sampling** — random β-fraction of zones into the labeled set `L`.
//! 4. **Labeling** — real SPQs for `L`'s trips only.
//! 5. **SSR** — train on `L`, infer `U`.

use crate::artifacts::OfflineArtifacts;
use crate::config::PipelineConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use staq_access::ZoneMeasures;
use staq_hoptree::{aggregate, FeatureExtractor, FEATURE_DIM};
use staq_ml::{Matrix, SparseAdj, SsrTask};
use staq_obs::{trace, AtomicHistogram, Counter};
use staq_synth::{City, PoiCategory, ZoneId};
use staq_todam::{LabelEngine, Todam, ZoneStats};
use staq_transit::{AccessCost, CostKind, SharedAccessCache};
use std::sync::Arc;
use std::time::Instant;

/// Full pipeline passes completed.
static PIPELINE_RUNS: Counter = Counter::new("pipeline.runs");
/// Stage walltimes, one histogram per stage so relative cost (Table II's
/// breakdown) is readable straight off a [`staq_obs::snapshot`].
static STAGE_TODAM: AtomicHistogram = AtomicHistogram::new("pipeline.stage.todam");
static STAGE_FEATURES: AtomicHistogram = AtomicHistogram::new("pipeline.stage.features");
static STAGE_SAMPLING: AtomicHistogram = AtomicHistogram::new("pipeline.stage.sampling");
static STAGE_LABELING: AtomicHistogram = AtomicHistogram::new("pipeline.stage.labeling");
static STAGE_TRAIN: AtomicHistogram = AtomicHistogram::new("pipeline.stage.train");

/// Wall-clock seconds per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    pub todam_secs: f64,
    pub feature_secs: f64,
    /// Drawing the labeled set `L` (cheap, but β-strategy dependent).
    pub sampling_secs: f64,
    pub label_secs: f64,
    pub train_secs: f64,
}

impl StageTimings {
    /// End-to-end solution cost (Table II's "Solution Cost").
    pub fn total(&self) -> f64 {
        self.todam_secs + self.feature_secs + self.sampling_secs + self.label_secs + self.train_secs
    }
}

/// Output of one pipeline run.
pub struct PipelineResult {
    /// The gravity matrix used.
    pub matrix: Todam,
    /// Zones labeled with real SPQs.
    pub labeled: Vec<ZoneId>,
    /// Zones whose measures were inferred.
    pub unlabeled: Vec<ZoneId>,
    /// Ground-truth stats for the labeled zones (aligned with `labeled`).
    pub labeled_stats: Vec<ZoneStats>,
    /// Measures for every eligible zone — SPQ-labeled for `labeled`,
    /// model-inferred for `unlabeled`.
    pub predicted: Vec<ZoneMeasures>,
    /// Feature matrix of the labeled zones (row order = `labeled`), retained
    /// so what-if scenarios can retrain without re-extracting features.
    pub x_labeled: Matrix,
    /// Feature matrix of the unlabeled zones (row order = `unlabeled`).
    pub x_unlabeled: Matrix,
    /// Trips actually routed (β of the matrix).
    pub labeled_trips: usize,
    pub timings: StageTimings,
}

impl PipelineResult {
    /// Feature row of `zone` (labeled or unlabeled), if it was eligible.
    /// Linear scan over the id lists — callers are off the hot path (the
    /// approximate-query fallback records one sample per exact compute).
    pub fn feature_row(&self, zone: ZoneId) -> Option<&[f64]> {
        if let Some(i) = self.labeled.iter().position(|&z| z == zone) {
            return Some(self.x_labeled.row(i));
        }
        self.unlabeled.iter().position(|&z| z == zone).map(|i| self.x_unlabeled.row(i))
    }

    /// Predicted measures of the unlabeled zones only (evaluation set).
    pub fn predicted_unlabeled(&self) -> Vec<ZoneMeasures> {
        // Two-pointer merge: `predicted` is sorted by zone and `unlabeled`
        // ascends (it filters the ascending eligible list), so no per-call
        // set needs building.
        let mut out = Vec::with_capacity(self.unlabeled.len());
        let mut i = 0;
        for &z in &self.unlabeled {
            while i < self.predicted.len() && self.predicted[i].zone < z {
                i += 1;
            }
            if i < self.predicted.len() && self.predicted[i].zone == z {
                out.push(self.predicted[i]);
                i += 1;
            }
        }
        out
    }
}

/// The SSR pipeline bound to a city and its offline artifacts.
pub struct SsrPipeline<'a> {
    pub city: &'a City,
    pub artifacts: &'a OfflineArtifacts,
    pub config: PipelineConfig,
    /// Fleet-shared isochrone cache for the labeling stage's routers; when
    /// absent every labeling worker warms a private cache from scratch.
    access_cache: Option<Arc<SharedAccessCache>>,
}

impl<'a> SsrPipeline<'a> {
    /// Creates a pipeline; validates the configuration.
    pub fn new(city: &'a City, artifacts: &'a OfflineArtifacts, config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline config");
        SsrPipeline { city, artifacts, config, access_cache: None }
    }

    /// Labels `L` through routers that share `cache` instead of warming
    /// private per-worker access caches. The caller owns invalidation: the
    /// cache must be epoch-bumped whenever the city's network changes.
    pub fn with_access_cache(mut self, cache: Arc<SharedAccessCache>) -> Self {
        self.access_cache = Some(cache);
        self
    }

    /// Runs the full pipeline for one POI category.
    pub fn run(&self, category: PoiCategory) -> PipelineResult {
        let cfg = &self.config;
        let _run_span = trace::span("pipeline.run");

        // 1. TODAM.
        let t0 = Instant::now();
        let stage = trace::span("pipeline.stage.todam");
        let matrix = cfg.todam.build(self.city, category);
        drop(stage);
        let todam_secs = t0.elapsed().as_secs_f64();
        STAGE_TODAM.record(t0.elapsed());

        // 2. Features for every zone (α-weighted origin level).
        let t0 = Instant::now();
        let stage = trace::span("pipeline.stage.features");
        let mut fx = FeatureExtractor::new(self.city, &self.artifacts.store);
        fx.use_interchanges = cfg.use_interchange_features;
        fx.max_hops = cfg.max_hops;
        let feats = aggregate::all_origin_features(&fx, self.city, &matrix);
        drop(stage);
        let feature_secs = t0.elapsed().as_secs_f64();
        STAGE_FEATURES.record(t0.elapsed());

        // Eligible zones: have features and at least one trip to label.
        let eligible: Vec<ZoneId> = (0..self.city.n_zones() as u32)
            .map(ZoneId)
            .filter(|&z| feats[z.idx()].is_some() && !matrix.zone_trips(z).is_empty())
            .collect();
        assert!(
            eligible.len() >= 4,
            "too few eligible zones ({}) for an SSR split",
            eligible.len()
        );

        // 3. Draw L at budget β.
        let t0 = Instant::now();
        let stage = trace::span("pipeline.stage.sampling");
        let n_l = ((eligible.len() as f64 * cfg.beta).ceil() as usize).clamp(2, eligible.len() - 1);
        let labeled = match cfg.sampling {
            crate::config::SamplingStrategy::Random => {
                let mut order = eligible.clone();
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBE7A);
                order.shuffle(&mut rng);
                order.truncate(n_l);
                order
            }
            crate::config::SamplingStrategy::SpatialCoverage => {
                farthest_point_sample(self.city, &eligible, n_l, cfg.seed)
            }
        };
        let labeled_set: std::collections::HashSet<ZoneId> = labeled.iter().copied().collect();
        let unlabeled: Vec<ZoneId> =
            eligible.iter().copied().filter(|z| !labeled_set.contains(z)).collect();
        drop(stage);
        let sampling_secs = t0.elapsed().as_secs_f64();
        STAGE_SAMPLING.record(t0.elapsed());

        // 4. Label L with real SPQs.
        let cost_model = match cfg.cost {
            CostKind::Jt => AccessCost::jt(),
            CostKind::Gac => AccessCost::gac(),
        };
        let mut engine = LabelEngine::new(self.city, cost_model, cfg.todam.interval.clone());
        if let Some(cache) = &self.access_cache {
            engine = engine.with_shared_cache(Arc::clone(cache));
        }
        let t0 = Instant::now();
        let stage = trace::span("pipeline.stage.labeling");
        let stats = engine.label_zones(&matrix, &labeled);
        drop(stage);
        let label_secs = t0.elapsed().as_secs_f64();
        STAGE_LABELING.record(t0.elapsed());
        let labeled_trips = engine.trip_count(&matrix, &labeled);
        // Eligibility guarantees trips, so every labeled zone has stats.
        let labeled_stats: Vec<ZoneStats> =
            stats.into_iter().map(|s| s.expect("eligible zone must label")).collect();

        // 5. SSR train + infer.
        let t0 = Instant::now();
        let stage = trace::span("pipeline.stage.train");
        let x_labeled = feature_matrix(&feats, &labeled);
        let x_unlabeled = feature_matrix(&feats, &unlabeled);
        let predicted = ssr_train_infer(
            self.city,
            cfg,
            &labeled,
            &unlabeled,
            &x_labeled,
            &x_unlabeled,
            &labeled_stats,
        );
        drop(stage);
        let train_secs = t0.elapsed().as_secs_f64();
        STAGE_TRAIN.record(t0.elapsed());
        PIPELINE_RUNS.inc();

        PipelineResult {
            matrix,
            labeled,
            unlabeled,
            labeled_stats,
            predicted,
            x_labeled,
            x_unlabeled,
            labeled_trips,
            timings: StageTimings {
                todam_secs,
                feature_secs,
                sampling_secs,
                label_secs,
                train_secs,
            },
        }
    }
}

/// Greedy k-center sampling: start from the zone nearest the seed-chosen
/// centroid, then repeatedly add the eligible zone farthest from the chosen
/// set. Guarantees spatial coverage: every zone lies within the final
/// covering radius of a labeled zone.
fn farthest_point_sample(city: &City, eligible: &[ZoneId], k: usize, seed: u64) -> Vec<ZoneId> {
    assert!(!eligible.is_empty());
    // Centroids once up front — the update loop runs k·n times and
    // `zone_centroid` is not free.
    let cents: Vec<_> = eligible.iter().map(|&z| city.zone_centroid(z)).collect();
    let first_idx = (seed as usize) % eligible.len();
    let mut chosen = vec![eligible[first_idx]];
    // Distance from each eligible zone to the nearest chosen zone.
    let mut dist: Vec<f64> = cents.iter().map(|c| c.dist(&cents[first_idx])).collect();
    while chosen.len() < k {
        let (best_idx, _) =
            dist.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).expect("nonempty");
        chosen.push(eligible[best_idx]);
        let np = cents[best_idx];
        for (d, c) in dist.iter_mut().zip(&cents) {
            *d = d.min(c.dist(&np));
        }
    }
    chosen
}

/// Stage 5 proper: train the configured SSR model on `(x_labeled,
/// labeled_stats)`, infer the unlabeled zones, and assemble the full
/// per-zone measure list (truth for `L`, clamped inference for `U`), sorted
/// by zone. Shared by the pipeline and the what-if engine, which retrains
/// on counterfactual labels over the *same* feature matrices.
pub fn ssr_train_infer(
    city: &City,
    cfg: &PipelineConfig,
    labeled: &[ZoneId],
    unlabeled: &[ZoneId],
    x_labeled: &Matrix,
    x_unlabeled: &Matrix,
    labeled_stats: &[ZoneStats],
) -> Vec<ZoneMeasures> {
    let y_labeled =
        Matrix::from_rows(&labeled_stats.iter().map(|s| vec![s.mac, s.acsd]).collect::<Vec<_>>());
    // GNN needs adjacency in L-then-U row order.
    let adjacency = if cfg.model == staq_ml::ModelKind::Gnn {
        let coords: Vec<(f64, f64)> = labeled
            .iter()
            .chain(unlabeled)
            .map(|z| {
                let c = city.zone_centroid(*z);
                (c.x, c.y)
            })
            .collect();
        Some(SparseAdj::gaussian_threshold(&coords, 12, 1e-4, None))
    } else {
        None
    };
    let task = SsrTask {
        x_labeled,
        y_labeled: &y_labeled,
        x_unlabeled,
        adjacency: adjacency.as_ref(),
        seed: cfg.seed,
    };
    let model = cfg.model.build();
    let pred = model.fit_predict(&task);

    // Assemble: truth for L, inference for U (costs clamped to their
    // physical domain: non-negative).
    let mut predicted = Vec::with_capacity(labeled.len() + unlabeled.len());
    for (z, s) in labeled.iter().zip(labeled_stats) {
        predicted.push(ZoneMeasures { zone: *z, mac: s.mac, acsd: s.acsd });
    }
    for (k, z) in unlabeled.iter().enumerate() {
        predicted.push(ZoneMeasures {
            zone: *z,
            mac: pred[(k, 0)].max(0.0),
            acsd: pred[(k, 1)].max(0.0),
        });
    }
    predicted.sort_by_key(|m| m.zone);
    predicted
}

fn feature_matrix(feats: &[Option<[f64; FEATURE_DIM]>], zones: &[ZoneId]) -> Matrix {
    Matrix::from_rows(
        &zones
            .iter()
            .map(|z| feats[z.idx()].expect("eligible zone has features").to_vec())
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_gtfs::time::TimeInterval;
    use staq_ml::ModelKind;
    use staq_road::IsochroneParams;
    use staq_synth::CityConfig;
    use staq_todam::TodamSpec;

    fn setup() -> (City, OfflineArtifacts) {
        let city = City::generate(&CityConfig::small(42));
        let artifacts =
            OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        (city, artifacts)
    }

    fn quick_config(beta: f64, model: ModelKind) -> PipelineConfig {
        PipelineConfig {
            beta,
            model,
            todam: TodamSpec { per_hour: 4, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_produces_full_coverage() {
        let (city, artifacts) = setup();
        let p = SsrPipeline::new(&city, &artifacts, quick_config(0.2, ModelKind::Ols));
        let r = p.run(PoiCategory::School);
        assert_eq!(r.predicted.len(), r.labeled.len() + r.unlabeled.len());
        assert!(r.labeled.len() >= 2);
        assert!(!r.unlabeled.is_empty());
        for m in &r.predicted {
            assert!(m.mac.is_finite() && m.mac >= 0.0);
            assert!(m.acsd.is_finite() && m.acsd >= 0.0);
        }
        assert!(r.timings.label_secs > 0.0);
        assert!(r.timings.total() > 0.0);
    }

    #[test]
    fn beta_controls_labeled_fraction_and_cost() {
        let (city, artifacts) = setup();
        let small = SsrPipeline::new(&city, &artifacts, quick_config(0.05, ModelKind::Ols))
            .run(PoiCategory::School);
        let large = SsrPipeline::new(&city, &artifacts, quick_config(0.3, ModelKind::Ols))
            .run(PoiCategory::School);
        assert!(large.labeled.len() > small.labeled.len() * 3);
        assert!(large.labeled_trips > small.labeled_trips);
    }

    #[test]
    fn labeled_zones_carry_ground_truth() {
        let (city, artifacts) = setup();
        let r = SsrPipeline::new(&city, &artifacts, quick_config(0.2, ModelKind::Ols))
            .run(PoiCategory::Hospital);
        for (z, s) in r.labeled.iter().zip(&r.labeled_stats) {
            let m = r.predicted.iter().find(|m| m.zone == *z).unwrap();
            assert_eq!(m.mac, s.mac);
            assert_eq!(m.acsd, s.acsd);
        }
    }

    #[test]
    fn all_models_run_end_to_end() {
        let (city, artifacts) = setup();
        for model in ModelKind::ALL {
            let mut cfg = quick_config(0.2, model);
            // Cheap training settings would live on the models; defaults are
            // small enough for the 120-zone city.
            cfg.seed = 3;
            let r = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::VaxCenter);
            assert!(
                r.predicted.iter().all(|m| m.mac.is_finite()),
                "model {model} produced non-finite MAC"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (city, artifacts) = setup();
        let a = SsrPipeline::new(&city, &artifacts, quick_config(0.1, ModelKind::Mlp))
            .run(PoiCategory::School);
        let b = SsrPipeline::new(&city, &artifacts, quick_config(0.1, ModelKind::Mlp))
            .run(PoiCategory::School);
        assert_eq!(a.labeled, b.labeled);
        assert_eq!(a.predicted, b.predicted);
    }

    #[test]
    fn spatial_coverage_sampling_spreads_the_labeled_set() {
        use crate::config::SamplingStrategy;
        let (city, artifacts) = setup();
        let run = |sampling: SamplingStrategy| {
            let cfg = PipelineConfig { sampling, ..quick_config(0.1, ModelKind::Ols) };
            SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School)
        };
        let random = run(SamplingStrategy::Random);
        let coverage = run(SamplingStrategy::SpatialCoverage);
        assert_eq!(random.labeled.len(), coverage.labeled.len());
        // Coverage radius: max distance from any zone to its nearest
        // labeled zone. Farthest-point sampling minimizes this greedily, so
        // it must not be worse than random.
        let radius = |labeled: &[ZoneId]| {
            city.zones
                .iter()
                .map(|z| {
                    labeled
                        .iter()
                        .map(|&l| z.centroid.dist(&city.zone_centroid(l)))
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(0.0f64, f64::max)
        };
        assert!(
            radius(&coverage.labeled) <= radius(&random.labeled) + 1e-9,
            "k-center radius {} should not exceed random's {}",
            radius(&coverage.labeled),
            radius(&random.labeled)
        );
    }

    #[test]
    fn coverage_sampling_is_deterministic() {
        use crate::config::SamplingStrategy;
        let (city, artifacts) = setup();
        let cfg = PipelineConfig {
            sampling: SamplingStrategy::SpatialCoverage,
            ..quick_config(0.1, ModelKind::Ols)
        };
        let a = SsrPipeline::new(&city, &artifacts, cfg.clone()).run(PoiCategory::School);
        let b = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School);
        assert_eq!(a.labeled, b.labeled);
    }

    #[test]
    fn predicted_unlabeled_excludes_labeled() {
        let (city, artifacts) = setup();
        let r = SsrPipeline::new(&city, &artifacts, quick_config(0.2, ModelKind::Ols))
            .run(PoiCategory::School);
        let u = r.predicted_unlabeled();
        assert_eq!(u.len(), r.unlabeled.len());
        let labeled: std::collections::HashSet<_> = r.labeled.iter().collect();
        assert!(u.iter().all(|m| !labeled.contains(&m.zone)));
    }
}

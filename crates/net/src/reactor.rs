//! Single-threaded readiness reactor for framed TCP connections.
//!
//! One event-loop thread owns the listener, every connection's socket,
//! input buffer and outbound queue. Inbound bytes are handed to a
//! [`ConnHandler`] which decodes frames and dispatches work elsewhere
//! (typically a worker pool); completions come back through the
//! [`ReplySink`] — an unbounded channel plus a pipe-based waker — and are
//! written from the per-connection outbound queue, honouring partial
//! writes. Connection slots carry a generation so a reply that arrives
//! after its connection died (and the slot was reused) is dropped instead
//! of being written to a stranger.
//!
//! Shutdown is two-phase: [`ReactorHandle::begin_drain`] stops accepting
//! and reading (in-flight work keeps completing), then
//! [`ReactorHandle::finish`] flushes every outbound queue (bounded by a
//! deadline), closes, and joins the loop.

use crate::poll::{Backend, Event, Interest, Poller};
use bytes::{Bytes, BytesMut};
use staq_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static NET_CONNS: Gauge = Gauge::new("net.conns");
static NET_ACCEPTED: Counter = Counter::new("net.accepted");
static NET_CLOSED: Counter = Counter::new("net.closed");
static NET_ACCEPT_ERRORS: Counter = Counter::new("net.accept_errors");
static NET_FRAMES_OUT: Counter = Counter::new("net.frames_out");
/// Bumped by protocol handlers per decoded inbound frame (the reactor
/// itself is framing-agnostic).
pub static FRAMES_IN: Counter = Counter::new("net.frames_in");

/// Live connections across every reactor in the process (backs the
/// `net.conns` gauge).
static GLOBAL_ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn conns_changed(delta: isize) {
    let now = if delta >= 0 {
        GLOBAL_ACTIVE.fetch_add(delta as usize, Ordering::Relaxed) + delta as usize
    } else {
        GLOBAL_ACTIVE.fetch_sub((-delta) as usize, Ordering::Relaxed) - (-delta) as usize
    };
    NET_CONNS.set(now as u64);
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_CONN_BASE: usize = 2;

/// Identifies one connection for the lifetime of the reactor. The
/// generation makes ids single-use: after a connection closes, a stale
/// id no longer matches the (possibly reused) slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConnId {
    idx: u32,
    gen: u32,
}

impl ConnId {
    /// Slot index — stable while this connection lives; reused after.
    pub fn index(&self) -> u32 {
        self.idx
    }
}

/// Wakes the event loop from other threads: one byte down a nonblocking
/// pipe, deduplicated by a pending flag so a storm of completions costs
/// one syscall.
struct Waker {
    tx: UnixStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&self.tx).write(&[1]);
        }
    }

    /// Event-loop side: re-arm *before* draining the channel so a wake
    /// racing with the drain writes a fresh byte instead of being lost.
    fn rearm(&self) {
        self.pending.store(false, Ordering::Release);
    }
}

enum Outbound {
    Frame(ConnId, Bytes),
    /// Flush whatever is queued for the connection, then close it.
    Close(ConnId),
}

/// Completion side of the reactor: any thread may queue frames for any
/// live connection. Cheap to clone.
#[derive(Clone)]
pub struct ReplySink {
    tx: crossbeam::channel::Sender<Outbound>,
    waker: Arc<Waker>,
}

impl ReplySink {
    /// Queues one already-encoded frame for `conn`. Silently dropped if
    /// the connection is gone by the time the reactor sees it.
    pub fn send(&self, conn: ConnId, frame: Bytes) {
        if self.tx.send(Outbound::Frame(conn, frame)).is_ok() {
            self.waker.wake();
        }
    }

    /// Closes `conn` after flushing frames queued before this call.
    pub fn close(&self, conn: ConnId) {
        if self.tx.send(Outbound::Close(conn)).is_ok() {
            self.waker.wake();
        }
    }
}

/// Protocol layer plugged into the reactor. Runs on the event-loop
/// thread — implementations must never block (dispatch to a pool and
/// answer through the [`ReplySink`]).
pub trait ConnHandler: Send {
    fn on_open(&mut self, _conn: ConnId) {}

    /// Called after new bytes land in `buf`. Drain every complete frame;
    /// leave partial trailing bytes in place. Return `false` to close the
    /// connection (protocol error) after flushing queued output.
    fn on_data(&mut self, conn: ConnId, buf: &mut BytesMut, out: &ReplySink) -> bool;

    fn on_close(&mut self, _conn: ConnId) {}
}

pub struct ReactorConfig {
    /// Thread name for the event loop.
    pub name: &'static str,
    /// Connections whose input buffer exceeds this after frame-draining
    /// are closed (a single frame larger than this can never complete).
    pub max_frame: usize,
    /// Poller backend selection (portable `poll` can be forced in tests).
    pub backend: Backend,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig { name: "staq-net", max_frame: 16 << 20, backend: Backend::Auto }
    }
}

struct Shared {
    draining: AtomicBool,
    stop: AtomicBool,
    flush_ms: AtomicU64,
    active: AtomicUsize,
}

/// Owner's view of a running reactor.
pub struct ReactorHandle {
    addr: SocketAddr,
    sink: ReplySink,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn sink(&self) -> ReplySink {
        self.sink.clone()
    }

    /// Live connections on this reactor.
    pub fn conn_count(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Phase one of shutdown: stop accepting and stop reading. Requests
    /// already dispatched keep completing and their responses still go
    /// out. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.sink.waker.wake();
    }

    /// Phase two: flush every outbound queue (up to `flush_timeout`),
    /// close all connections and join the event loop. Idempotent — later
    /// calls return immediately.
    pub fn finish(&mut self, flush_timeout: Duration) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared
            .flush_ms
            .store(flush_timeout.as_millis().min(u64::MAX as u128) as u64, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        self.sink.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.finish(Duration::from_secs(1));
    }
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    in_buf: BytesMut,
    out: VecDeque<Bytes>,
    /// Bytes of `out.front()` already written.
    out_pos: usize,
    interest: Interest,
    /// Flush the queue, then close.
    closing: bool,
    read_eof: bool,
    /// Already on this tick's flush list.
    dirty: bool,
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    handler: Box<dyn ConnHandler>,
    sink: ReplySink,
    rx: crossbeam::channel::Receiver<Outbound>,
    waker_rx: UnixStream,
    shared: Arc<Shared>,
    max_frame: usize,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    touched: Vec<usize>,
    scratch: Box<[u8]>,
    reads_on: bool,
}

/// Binds nothing itself: callers pass a bound listener so tests and
/// binaries control the address. Returns once the loop thread is up.
pub fn spawn(
    listener: TcpListener,
    handler: Box<dyn ConnHandler>,
    cfg: ReactorConfig,
) -> io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut poller = Poller::new(cfg.backend)?;

    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let waker = Arc::new(Waker { tx: wake_tx, pending: AtomicBool::new(false) });

    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;

    let (tx, rx) = crossbeam::channel::unbounded();
    let sink = ReplySink { tx, waker };
    let shared = Arc::new(Shared {
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        flush_ms: AtomicU64::new(1000),
        active: AtomicUsize::new(0),
    });

    let mut reactor = Reactor {
        listener,
        poller,
        handler,
        sink: sink.clone(),
        rx,
        waker_rx: wake_rx,
        shared: shared.clone(),
        max_frame: cfg.max_frame,
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        touched: Vec::new(),
        scratch: vec![0u8; 64 * 1024].into_boxed_slice(),
        reads_on: true,
    };
    let thread =
        std::thread::Builder::new().name(cfg.name.to_string()).spawn(move || reactor.run())?;

    Ok(ReactorHandle { addr, sink, shared, thread: Some(thread) })
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut flush_deadline: Option<Instant> = None;
        loop {
            self.drain_outbound();

            if self.shared.draining.load(Ordering::Acquire) && self.reads_on {
                self.stop_reading();
            }
            if self.shared.stop.load(Ordering::Acquire) {
                let deadline = *flush_deadline.get_or_insert_with(|| {
                    Instant::now()
                        + Duration::from_millis(self.shared.flush_ms.load(Ordering::Acquire))
                });
                let flushed =
                    self.rx.is_empty() && self.conns.iter().flatten().all(|c| c.out.is_empty());
                if flushed || Instant::now() >= deadline {
                    break;
                }
            }

            if self.poller.wait(&mut events, Some(Duration::from_millis(100))).is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    t => self.conn_event(t - TOKEN_CONN_BASE, ev),
                }
            }
        }
        // Teardown: everything still open gets one last close callback.
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
    }

    fn live(&self, cid: ConnId) -> Option<usize> {
        let idx = cid.idx as usize;
        match self.conns.get(idx) {
            Some(Some(c)) if c.gen == cid.gen => Some(idx),
            _ => None,
        }
    }

    /// Moves completions from the sink channel into per-connection
    /// queues, then opportunistically flushes each touched connection so
    /// the common case (socket writable) costs no extra poll round-trip.
    fn drain_outbound(&mut self) {
        self.sink.waker.rearm();
        while let Ok(ob) = self.rx.try_recv() {
            let (cid, frame) = match ob {
                Outbound::Frame(cid, f) => (cid, Some(f)),
                Outbound::Close(cid) => (cid, None),
            };
            let Some(idx) = self.live(cid) else { continue };
            let conn = self.conns[idx].as_mut().unwrap();
            match frame {
                Some(f) => {
                    conn.out.push_back(f);
                    NET_FRAMES_OUT.inc();
                }
                None => conn.closing = true,
            }
            if !conn.dirty {
                conn.dirty = true;
                self.touched.push(idx);
            }
        }
        let touched = std::mem::take(&mut self.touched);
        for idx in touched {
            if let Some(c) = self.conns[idx].as_mut() {
                c.dirty = false;
                self.flush_conn(idx);
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn accept_ready(&mut self) {
        if self.shared.draining.load(Ordering::Acquire) {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.add_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE and friends: count it and let the next poll
                    // tick retry instead of spinning.
                    NET_ACCEPT_ERRORS.inc();
                    break;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let gen = self.gens[idx];
        if self.poller.register(stream.as_raw_fd(), idx + TOKEN_CONN_BASE, Interest::READ).is_err()
        {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            gen,
            in_buf: BytesMut::with_capacity(4096),
            out: VecDeque::new(),
            out_pos: 0,
            interest: Interest::READ,
            closing: false,
            read_eof: false,
            dirty: false,
        });
        self.shared.active.fetch_add(1, Ordering::Relaxed);
        conns_changed(1);
        NET_ACCEPTED.inc();
        self.handler.on_open(ConnId { idx: idx as u32, gen });
    }

    fn conn_event(&mut self, idx: usize, ev: Event) {
        if self.conns.get(idx).is_none_or(|c| c.is_none()) {
            return;
        }
        if ev.readable && self.reads_on {
            self.read_conn(idx);
        }
        if self.conns.get(idx).is_none_or(|c| c.is_none()) {
            return; // read path closed it
        }
        if ev.writable {
            self.flush_conn(idx);
        }
        if self.conns.get(idx).is_none_or(|c| c.is_none()) {
            return;
        }
        if ev.hup {
            // Peer went away (or half-closed): finish writing what we
            // have, then close. A dead peer fails the write promptly.
            let conn = self.conns[idx].as_mut().unwrap();
            if conn.out.is_empty() {
                self.close_conn(idx);
            } else {
                conn.closing = true;
                self.update_interest(idx);
            }
        }
    }

    fn read_conn(&mut self, idx: usize) {
        loop {
            let conn = self.conns[idx].as_mut().unwrap();
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_eof = true;
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.in_buf.extend_from_slice(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        let cid = {
            let conn = self.conns[idx].as_ref().unwrap();
            ConnId { idx: idx as u32, gen: conn.gen }
        };
        // Temporarily take the buffer so the handler and the connection
        // table don't fight over `self`.
        let mut in_buf = std::mem::take(&mut self.conns[idx].as_mut().unwrap().in_buf);
        let keep = self.handler.on_data(cid, &mut in_buf, &self.sink);
        let oversized = in_buf.len() > self.max_frame + 64;
        let conn = self.conns[idx].as_mut().unwrap();
        conn.in_buf = in_buf;
        if !keep || oversized {
            conn.closing = true;
        }
        // The handler may have queued replies through the sink in this
        // same tick (e.g. an error frame right before requesting the
        // close); pull them into the outbound queues before judging
        // whether this connection is safe to close.
        self.drain_outbound();
        if let Some(conn) = self.conns[idx].as_ref() {
            if conn.closing && conn.out.is_empty() {
                self.close_conn(idx);
            } else {
                self.update_interest(idx);
            }
        }
    }

    fn flush_conn(&mut self, idx: usize) {
        loop {
            let conn = self.conns[idx].as_mut().unwrap();
            // Cheap Arc-window clone so the write below doesn't hold a
            // borrow of the queue.
            let Some(front) = conn.out.front().cloned() else { break };
            match conn.stream.write(&front[conn.out_pos..]) {
                Ok(n) => {
                    conn.out_pos += n;
                    if conn.out_pos == front.len() {
                        conn.out.pop_front();
                        conn.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        let conn = self.conns[idx].as_ref().unwrap();
        if conn.closing && conn.out.is_empty() {
            self.close_conn(idx);
        } else {
            self.update_interest(idx);
        }
    }

    fn update_interest(&mut self, idx: usize) {
        let conn = self.conns[idx].as_mut().unwrap();
        let desired = Interest {
            readable: self.reads_on && !conn.read_eof && !conn.closing,
            writable: !conn.out.is_empty(),
        };
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = desired;
            let _ = self.poller.reregister(fd, idx + TOKEN_CONN_BASE, desired);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        conns_changed(-1);
        NET_CLOSED.inc();
        self.handler.on_close(ConnId { idx: idx as u32, gen: conn.gen });
    }

    /// Drain phase: deaf to new connections and new bytes, still writing.
    fn stop_reading(&mut self) {
        self.reads_on = false;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.update_interest(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test protocol: 1-byte length prefix + payload; echoes the payload
    /// reversed. `on_data` must handle partial frames and pipelining.
    struct Echo;
    impl ConnHandler for Echo {
        fn on_data(&mut self, conn: ConnId, buf: &mut BytesMut, out: &ReplySink) -> bool {
            loop {
                if buf.is_empty() {
                    return true;
                }
                let need = buf[0] as usize + 1;
                if buf.len() < need {
                    return true;
                }
                let frame = buf.split_to(need);
                let mut reply = Vec::with_capacity(need);
                reply.push(frame[0]);
                reply.extend(frame[1..].iter().rev());
                out.send(conn, reply.into());
            }
        }
    }

    fn echo_roundtrip(backend: Backend) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut handle = spawn(
            listener,
            Box::new(Echo),
            ReactorConfig { name: "test-echo", max_frame: 1 << 16, backend },
        )
        .unwrap();

        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Two pipelined frames, the second split across writes.
        s.write_all(&[3, b'a', b'b', b'c', 4, b'w']).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        s.write_all(b"xyz").unwrap();

        let mut got = [0u8; 9];
        s.read_exact(&mut got).unwrap();
        assert_eq!(&got, &[3, b'c', b'b', b'a', 4, b'z', b'y', b'x', b'w']);
        assert_eq!(handle.conn_count(), 1);

        drop(s);
        // The reactor notices the close soon after.
        let t0 = Instant::now();
        while handle.conn_count() != 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.conn_count(), 0);
        handle.finish(Duration::from_secs(1));
    }

    #[test]
    fn echo_roundtrip_auto_backend() {
        echo_roundtrip(Backend::Auto);
    }

    #[test]
    fn echo_roundtrip_portable_backend() {
        echo_roundtrip(Backend::Poll);
    }

    /// Echo that reports each decoded frame, so tests can sequence
    /// shutdown after the request was actually seen.
    struct SignallingEcho(std::sync::mpsc::Sender<()>);
    impl ConnHandler for SignallingEcho {
        fn on_data(&mut self, conn: ConnId, buf: &mut BytesMut, out: &ReplySink) -> bool {
            let before = buf.len();
            let keep = Echo.on_data(conn, buf, out);
            if buf.len() != before {
                let _ = self.0.send(());
            }
            keep
        }
    }

    #[test]
    fn finish_flushes_queued_output_before_closing() {
        let (tx, rx) = std::sync::mpsc::channel();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut handle =
            spawn(listener, Box::new(SignallingEcho(tx)), ReactorConfig::default()).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&[2, b'h', b'i']).unwrap();
        // Don't read yet: once the frame is decoded, drain + finish must
        // still deliver the queued reply.
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        handle.begin_drain();
        handle.finish(Duration::from_secs(5));
        let mut got = Vec::new();
        s.read_to_end(&mut got).unwrap();
        assert_eq!(got, vec![2, b'i', b'h']);
    }

    #[test]
    fn drain_stops_accepting_but_existing_replies_flow() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut handle = spawn(listener, Box::new(Echo), ReactorConfig::default()).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&[1, b'q']).unwrap();
        let mut got = [0u8; 2];
        s.read_exact(&mut got).unwrap();

        handle.begin_drain();
        std::thread::sleep(Duration::from_millis(50));
        // New connections are not served while draining.
        let probe = TcpStream::connect(handle.addr());
        if let Ok(mut p) = probe {
            p.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            let _ = p.write_all(&[1, b'z']);
            let mut buf = [0u8; 2];
            assert!(p.read_exact(&mut buf).is_err(), "draining reactor answered a new conn");
        }
        handle.finish(Duration::from_secs(1));
    }

    #[test]
    fn stale_conn_ids_are_dropped_not_misdelivered() {
        struct Capture(std::sync::mpsc::Sender<ConnId>);
        impl ConnHandler for Capture {
            fn on_open(&mut self, conn: ConnId) {
                let _ = self.0.send(conn);
            }
            fn on_data(&mut self, _conn: ConnId, buf: &mut BytesMut, _out: &ReplySink) -> bool {
                buf.clear();
                true
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut handle = spawn(listener, Box::new(Capture(tx)), ReactorConfig::default()).unwrap();
        let sink = handle.sink();

        let first = TcpStream::connect(handle.addr()).unwrap();
        let stale = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(first);
        let t0 = Instant::now();
        while handle.conn_count() != 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }

        // Same slot, new generation.
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        let fresh = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(stale.index(), fresh.index(), "slot should be reused");
        assert_ne!(stale, fresh);

        // A frame addressed to the dead generation must not reach the
        // new occupant of the slot.
        sink.send(stale, Bytes::from(vec![0xAA; 4]));
        sink.send(fresh, Bytes::from(vec![0x55; 2]));
        let mut got = [0u8; 2];
        second.read_exact(&mut got).unwrap();
        assert_eq!(got, [0x55, 0x55]);
        handle.finish(Duration::from_secs(1));
    }
}

//! # staq-access
//!
//! Accessibility measures and dynamic access queries (paper §III).
//!
//! Once the TODAM is labeled (every zone has a mean access cost and its
//! standard deviation), this crate turns those per-zone statistics into the
//! paper's measures and answers the four analytical queries its
//! introduction motivates:
//!
//! * **MAC** — mean access cost per zone (Eq. 2).
//! * **ACSD** — access-cost standard deviation (temporal variation).
//! * **AC** — the four-class accessibility classification
//!   (best / mostly good / mostly bad / worst, §III-D).
//! * **Fairness index** — Jain's index over MAC, optionally weighted by
//!   zone demographics.
//! * [`query::AccessQuery`] — the analytical query types themselves.

pub mod classify;
pub mod fairness;
pub mod measures;
pub mod query;

pub use classify::{classify_all, AccessClass};
pub use fairness::{gini, jain_index, palma_ratio, weighted_jain_index};
pub use measures::ZoneMeasures;
pub use query::{AccessQuery, DemographicWeight, QueryAnswer};

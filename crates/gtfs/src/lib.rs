//! # staq-gtfs
//!
//! A self-contained implementation of the subset of the **General Transit
//! Feed Specification** (GTFS) needed for accessibility analysis, plus the
//! temporal primitives the paper builds on.
//!
//! The paper (§III-A) calls this data `F`: "information about stops, routes,
//! and individual departure and arrival times", consumed through two views —
//! `F_stops` (stops near a location) and `F_trips` (services through a stop
//! within a time interval). [`index::FeedIndex`] provides exactly those
//! views over a parsed [`model::Feed`].
//!
//! Feeds are parsed from GTFS's CSV text format by a purpose-built reader in
//! [`csv`] (GTFS's dialect is plain RFC-4180), and can be serialized back,
//! so synthetic feeds from `staq-synth` round-trip through the same text
//! path a real agency feed would.
//!
//! * [`time`] — seconds-since-midnight service time (`Stime`, > 24 h legal
//!   per GTFS), days of week, and the paper's time interval `v = [t_s, t_e, t_d]`.
//! * [`model`] — typed records: agencies, stops, routes, trips, stop times,
//!   calendars, with `u32` newtype ids.
//! * [`csv`] — minimal RFC-4180 reader/writer.
//! * [`parse`] / [`write`] — feed ⇄ text tables.
//! * [`index`] — `FeedIndex`: departures-at-stop, trip stop sequences,
//!   stops-by-route, spatial stop lookup inputs.
//! * [`validate`] — referential integrity and monotonicity checks.

pub mod csv;
pub mod delta;
pub mod index;
pub mod model;
pub mod parse;
pub mod time;
pub mod validate;
pub mod write;

pub use delta::{Delta, DeltaOutcome};
pub use index::FeedIndex;
pub use model::{Feed, Route, RouteId, Stop, StopId, StopTime, Trip, TripId};
pub use time::{DayOfWeek, Stime, TimeInterval};

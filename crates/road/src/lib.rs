//! # staq-road
//!
//! The road/walking network substrate: the graph `G(N, E)` of paper §III-A,
//! restricted to its pedestrian role. Transit riders touch the road network
//! three ways — walking to a first stop (access), walking between stops at an
//! interchange, and walking from a final stop (egress) — and all three reduce
//! to shortest walking time between two graph nodes.
//!
//! * [`graph`] — a compact CSR directed graph with planar node positions and
//!   edge traversal times.
//! * [`dijkstra`] — exact one-to-one, one-to-many and budget-bounded
//!   shortest paths.
//! * [`isochrone`] — walking isochrones `W_i` (paper §IV-A): the region
//!   reachable from a point within `τ` seconds at walking speed `ω`,
//!   represented as a polygon plus the reachable node set.
//! * [`snap`] — snapping arbitrary points (zone centroids, POIs, bus stops)
//!   to their nearest graph node.

pub mod dijkstra;
pub mod graph;
pub mod isochrone;
pub mod snap;

pub use dijkstra::{bounded_walk_times, walk_time, walk_times_from};
pub use graph::{EdgeId, NodeId, RoadGraph, RoadGraphBuilder};
pub use isochrone::{Isochrone, IsochroneParams};
pub use snap::NodeSnapper;

/// Default acceptable walking budget τ in seconds (paper §V-A: τ = 600).
pub const DEFAULT_TAU_SECS: f64 = 600.0;

/// Default walking speed ω in meters/second (paper §V-A: ω = 4.5 km/h).
pub const DEFAULT_OMEGA_MPS: f64 = 4.5 * 1000.0 / 3600.0;

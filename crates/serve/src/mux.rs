//! Multiplexed client: one socket, many concurrent callers.
//!
//! A [`MuxClient`] exploits the v4 wire protocol's request IDs to keep
//! any number of requests in flight over a single TCP connection. Each
//! call stamps a fresh ID into its frame, registers a reply slot, and
//! writes under a brief writer lock; a dedicated reader thread decodes
//! response frames as they arrive — in whatever order the server
//! completed them — and routes each to its caller by ID. Compared to a
//! pool of private [`Client`] connections this turns N concurrent
//! round-trips into pipelined frames on one stream: one socket, one
//! reader, no checkout latency.
//!
//! Failure model:
//!
//! * Transport errors (broken pipe, EOF, decode desync) poison the
//!   whole client — every in-flight and future call fails, matching the
//!   [`ClientError::Poisoned`] contract of the plain client. There is
//!   no per-request recovery on a broken stream.
//! * A call that outlives its own `timeout` fails with
//!   [`ClientError::TimedOut`] but does **not** poison: the stream is
//!   still in sync, and when the late response eventually arrives the
//!   reader finds no waiter registered for its ID and discards it.
//!
//! [`Client`]: crate::client::Client

use crate::client::ClientError;
use crate::codec::{self, Request, Response};
use bytes::BytesMut;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// A cloneable handle to one multiplexed connection. Clones share the
/// socket; every clone (and every thread) may call concurrently.
pub struct MuxClient {
    inner: Arc<Inner>,
}

impl Clone for MuxClient {
    fn clone(&self) -> Self {
        MuxClient { inner: Arc::clone(&self.inner) }
    }
}

struct Inner {
    /// Kept for shutdown on drop (unblocks the reader thread).
    stream: TcpStream,
    /// Writers serialize frame writes; the lock spans one `write_all`.
    writer: Mutex<TcpStream>,
    /// In-flight calls awaiting their response, by request ID.
    pending: Mutex<HashMap<u64, Sender<Result<Response, ClientError>>>>,
    next_id: AtomicU64,
    poisoned: AtomicBool,
}

impl Inner {
    /// Marks the client dead and fails every in-flight call.
    fn poison_all(&self) {
        self.poisoned.store(true, Ordering::Release);
        let waiters = std::mem::take(&mut *self.pending.lock());
        for (_, tx) in waiters {
            let _ = tx.send(Err(ClientError::Poisoned));
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Wakes the reader out of its blocking read; it exits on the
        // resulting EOF/error.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl MuxClient {
    /// Connects and starts the reader thread.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<MuxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        let inner = Arc::new(Inner {
            stream,
            writer: Mutex::new(writer),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            poisoned: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("staq-mux-reader".into())
            .spawn(move || reader_loop(reader, weak))
            .expect("spawning mux reader thread");
        Ok(MuxClient { inner })
    }

    /// True after any transport failure: all calls fail fast with
    /// [`ClientError::Poisoned`]; discard the client.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// Sends one request and blocks until its response arrives, however
    /// many other calls are in flight on this connection.
    pub fn call(&self, request: &Request) -> Result<Response, ClientError> {
        self.call_opts(request, None, None)
    }

    /// [`call`](Self::call) with a client-side timeout. On expiry the
    /// call fails with [`ClientError::TimedOut`]; the connection stays
    /// healthy (the late response is discarded by ID when it lands).
    pub fn call_timeout(
        &self,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, ClientError> {
        self.call_opts(request, Some(timeout), None)
    }

    /// [`call_timeout`](Self::call_timeout) that also stamps the
    /// deadline into the frame, letting the server shed the request
    /// with `Overloaded` instead of executing it after the caller has
    /// already given up.
    pub fn call_with_deadline(
        &self,
        request: &Request,
        deadline: Duration,
    ) -> Result<Response, ClientError> {
        let ms = deadline.as_millis().min(u32::MAX as u128) as u32;
        self.call_opts(request, Some(deadline), Some(ms))
    }

    fn call_opts(
        &self,
        request: &Request,
        timeout: Option<Duration>,
        deadline_ms: Option<u32>,
    ) -> Result<Response, ClientError> {
        let inner = &self.inner;
        if inner.poisoned.load(Ordering::Acquire) {
            return Err(ClientError::Poisoned);
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        inner.pending.lock().insert(id, tx);

        let mut out = BytesMut::with_capacity(256);
        codec::encode_request_mux(request, id, deadline_ms, &mut out);
        {
            let mut w = inner.writer.lock();
            if let Err(e) = w.write_all(&out) {
                drop(w);
                // A half-written frame desyncs the stream for everyone.
                inner.poison_all();
                return Err(ClientError::Io(e));
            }
        }

        let result = match timeout {
            None => rx.recv().unwrap_or(Err(ClientError::Poisoned)),
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    // Deregister so the reader discards the late frame.
                    inner.pending.lock().remove(&id);
                    Err(ClientError::TimedOut)
                }
                Err(RecvTimeoutError::Disconnected) => Err(ClientError::Poisoned),
            },
        };
        result
    }
}

/// Decodes response frames off the shared socket and routes each to its
/// waiter by request ID until EOF, a transport error, or every handle
/// is dropped.
fn reader_loop(mut stream: TcpStream, inner: Weak<Inner>) {
    let mut buf = BytesMut::with_capacity(4096);
    let mut scratch = [0u8; 16 * 1024];
    loop {
        // Drain complete frames before reading more bytes.
        loop {
            let decoded = match codec::decode_response_full(&mut buf) {
                Ok(Some(d)) => d,
                Ok(None) => break,
                Err(_) => {
                    if let Some(inner) = inner.upgrade() {
                        inner.poison_all();
                    }
                    return;
                }
            };
            let Some(strong) = inner.upgrade() else { return };
            let waiter = strong.pending.lock().remove(&decoded.req_id);
            if let Some(tx) = waiter {
                let _ = tx.send(Ok(decoded.response));
            }
            // No waiter: a timed-out call already gave up — drop it.
        }
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => {
                if let Some(inner) = inner.upgrade() {
                    inner.poison_all();
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ErrorCode;
    use std::net::TcpListener;

    /// A minimal protocol peer: answers every request with an error
    /// frame echoing the request ID — enough to exercise multiplexed
    /// routing without booting an engine.
    fn echo_error_server(listener: TcpListener) {
        std::thread::spawn(move || {
            let Ok((mut s, _)) = listener.accept() else { return };
            let mut buf = BytesMut::new();
            let mut scratch = [0u8; 4096];
            loop {
                while let Ok(Some(d)) = codec::decode_request_full(&mut buf) {
                    let resp = Response::Error {
                        code: ErrorCode::Invalid,
                        message: format!("echo {}", d.req_id),
                    };
                    let mut out = BytesMut::new();
                    codec::encode_response_to(&resp, d.version, d.req_id, &mut out);
                    if s.write_all(&out).is_err() {
                        return;
                    }
                }
                match s.read(&mut scratch) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => buf.extend_from_slice(&scratch[..n]),
                }
            }
        });
    }

    #[test]
    fn concurrent_calls_each_get_their_own_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        echo_error_server(listener);
        let mux = MuxClient::connect(addr).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mux = mux.clone();
                std::thread::spawn(move || mux.call(&Request::Stats))
            })
            .collect();
        let mut ids = Vec::new();
        for h in handles {
            match h.join().unwrap() {
                Ok(Response::Error { code: ErrorCode::Invalid, message }) => {
                    let id: u64 = message.strip_prefix("echo ").unwrap().parse().unwrap();
                    ids.push(id);
                }
                other => panic!("{other:?}"),
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every caller got a distinct response");
        assert!(!mux.is_poisoned());
    }

    #[test]
    fn timeout_fails_the_call_but_not_the_connection() {
        // A listener that accepts and never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _held = std::thread::spawn(move || listener.accept());
        let mux = MuxClient::connect(addr).unwrap();
        match mux.call_timeout(&Request::Stats, Duration::from_millis(50)) {
            Err(ClientError::TimedOut) => {}
            other => panic!("{other:?}"),
        }
        assert!(!mux.is_poisoned(), "a timeout alone must not poison");
    }

    #[test]
    fn server_death_poisons_every_in_flight_call() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let killer = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(50));
            drop(s); // close without answering
        });
        let mux = MuxClient::connect(addr).unwrap();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let mux = mux.clone();
                std::thread::spawn(move || mux.call(&Request::Stats))
            })
            .collect();
        for w in waiters {
            match w.join().unwrap() {
                Err(ClientError::Poisoned) => {}
                other => panic!("{other:?}"),
            }
        }
        killer.join().unwrap();
        assert!(mux.is_poisoned());
        match mux.call(&Request::Stats) {
            Err(ClientError::Poisoned) => {}
            other => panic!("{other:?}"),
        }
    }
}

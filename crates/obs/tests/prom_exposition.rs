//! Exposition-format correctness for the Prometheus scrape surface:
//! a golden page for a fixed snapshot, plus property tests over
//! arbitrary snapshots pinning the format invariants a scraper relies
//! on — one `# HELP`/`# TYPE` pair per family, monotone non-decreasing
//! cumulative buckets ending at `+Inf`, and label/name escaping that
//! keeps hostile metric names from breaking the line protocol.

use proptest::collection::vec;
use proptest::prelude::*;
use staq_obs::prom::render;
use staq_obs::{CounterSample, GaugeSample, HistogramSample, LatencyHistogram, MetricsSnapshot};
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn golden_page_for_a_fixed_snapshot() {
    let mut h = LatencyHistogram::new();
    h.record(Duration::from_nanos(100));
    h.record(Duration::from_nanos(100));
    h.record(Duration::from_micros(50));
    let snap = MetricsSnapshot {
        counters: vec![CounterSample { name: "engine.cache.hits".into(), value: 42 }],
        gauges: vec![GaugeSample { name: "serve.workers".into(), value: 8 }],
        histograms: vec![HistogramSample::from_histogram("serve.request.query", &h)],
    };
    let text = render(&snap);
    let expected = "\
# HELP staq_engine_cache_hits STAQ cumulative counter 'engine.cache.hits'
# TYPE staq_engine_cache_hits counter
staq_engine_cache_hits 42
# HELP staq_serve_workers STAQ level gauge 'serve.workers'
# TYPE staq_serve_workers gauge
staq_serve_workers 8
# HELP staq_serve_request_query STAQ latency histogram (seconds) 'serve.request.query'
# TYPE staq_serve_request_query histogram
staq_serve_request_query_bucket{le=\"0.0000001\"} 2
staq_serve_request_query_bucket{le=\"0.000049152\"} 3
staq_serve_request_query_bucket{le=\"+Inf\"} 3
staq_serve_request_query_sum 0.0000502
staq_serve_request_query_count 3
";
    assert_eq!(text, expected);
}

/// Raw metric names: printable ASCII plus the troublemakers (quotes,
/// braces, backslashes, newlines, unicode).
fn raw_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z.{}\"\\\\\n é_0-9-]{1,24}").unwrap()
}

fn arb_hist() -> impl Strategy<Value = (String, Vec<u64>)> {
    (raw_name(), vec(1u64..=40_000_000_000u64, 0..40))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn headers_appear_once_per_family(
        counters in vec((raw_name(), 0u64..u64::MAX), 0..8),
        gauges in vec((raw_name(), 0u64..u64::MAX), 0..8),
    ) {
        let snap = MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterSample { name, value })
                .collect(),
            gauges: gauges.into_iter().map(|(name, value)| GaugeSample { name, value }).collect(),
            histograms: vec![],
        };
        let text = render(&snap);
        let mut help: HashMap<&str, usize> = HashMap::new();
        let mut types: HashMap<&str, usize> = HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                *help.entry(rest.split(' ').next().unwrap()).or_default() += 1;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                *types.entry(rest.split(' ').next().unwrap()).or_default() += 1;
            }
        }
        for (family, n) in &help {
            prop_assert_eq!(*n, 1, "duplicate HELP for {}", family);
        }
        for (family, n) in &types {
            prop_assert_eq!(*n, 1, "duplicate TYPE for {}", family);
            prop_assert!(help.contains_key(family), "TYPE without HELP for {}", family);
        }
        // Every non-comment line is `name[_suffix[{le="..."}]] value`
        // over a sanitized name: hostile raw names never leak format
        // characters into the sample lines.
        for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            prop_assert!(name.starts_with("staq_"), "bad sample line: {}", line);
            prop_assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsanitized name in: {}",
                line
            );
            prop_assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(), "{}", line);
        }
    }

    #[test]
    fn histogram_series_are_cumulative_with_terminal_inf(hists in vec(arb_hist(), 1..5)) {
        let snap = MetricsSnapshot {
            histograms: hists
                .iter()
                .map(|(name, samples)| {
                    let mut h = LatencyHistogram::new();
                    for &ns in samples {
                        h.record_ns(ns);
                    }
                    HistogramSample::from_histogram(name, &h)
                })
                .collect(),
            ..Default::default()
        };
        let text = render(&snap);
        // Walk each family's bucket series in page order.
        let mut cur_family: Option<String> = None;
        let mut last_cum = 0u64;
        let mut last_le = f64::NEG_INFINITY;
        let mut saw_inf = false;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                // A new family begins; the previous one must have closed
                // with +Inf.
                prop_assert!(cur_family.is_none() || saw_inf);
                cur_family = Some(rest.split(' ').next().unwrap().to_string());
                last_cum = 0;
                last_le = f64::NEG_INFINITY;
                saw_inf = false;
            } else if let Some((_, rest)) = line.split_once("_bucket{le=\"") {
                let (le_text, count_text) = rest.split_once("\"} ").unwrap();
                let cum: u64 = count_text.parse().unwrap();
                prop_assert!(cum >= last_cum, "non-monotone buckets: {}", line);
                last_cum = cum;
                if le_text == "+Inf" {
                    saw_inf = true;
                } else {
                    prop_assert!(!saw_inf, "+Inf must terminate the series: {}", line);
                    let le: f64 = le_text.parse().unwrap();
                    prop_assert!(le > last_le, "le edges must increase: {}", line);
                    last_le = le;
                }
            } else if line.contains("_count ") {
                let total: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                prop_assert!(saw_inf, "bucketless histogram family");
                prop_assert_eq!(total, last_cum, "+Inf bucket must equal _count");
            }
        }
        prop_assert!(saw_inf, "last family never closed with +Inf");
    }
}

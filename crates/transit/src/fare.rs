//! Fare model for the GAC's monetary component.
//!
//! West Midlands bus fares are flat per boarding with a daily cap; the model
//! reproduces that structure. Values are pounds sterling.

use serde::{Deserialize, Serialize};

/// A flat-fare-with-cap model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FareModel {
    /// Fare charged per boarding, £.
    pub per_ride: f64,
    /// Daily cap, £ (a day ticket price); boardings beyond the cap are free.
    pub day_cap: f64,
}

impl Default for FareModel {
    /// TfWM-like 2022 fares: £1.70 single, £4.00 day cap.
    fn default() -> Self {
        FareModel { per_ride: 1.70, day_cap: 4.00 }
    }
}

impl FareModel {
    /// Fare for a journey with `n_rides` boardings, £.
    pub fn fare(&self, n_rides: usize) -> f64 {
        (self.per_ride * n_rides as f64).min(self.day_cap)
    }

    /// A free-fare model (used to ablate the monetary term of the GAC).
    pub fn free() -> Self {
        FareModel { per_ride: 0.0, day_cap: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_ride_until_cap() {
        let f = FareModel::default();
        assert_eq!(f.fare(0), 0.0);
        assert!((f.fare(1) - 1.70).abs() < 1e-12);
        assert!((f.fare(2) - 3.40).abs() < 1e-12);
        assert!((f.fare(3) - 4.00).abs() < 1e-12, "capped");
        assert!((f.fare(10) - 4.00).abs() < 1e-12);
    }

    #[test]
    fn free_model_charges_nothing() {
        assert_eq!(FareModel::free().fare(5), 0.0);
    }
}

//! Ordinary least squares with a small ridge stabilizer.
//!
//! The paper's simplest baseline. Solved via the normal equations
//! `(XᵀX + λI)W = XᵀY` with an intercept column; λ keeps the system
//! solvable when the labeled set is small or collinear — exactly the regime
//! (low β) where the paper observes OLS becoming "inconsistent".

use crate::linalg::Matrix;
use crate::ssr::{SsrModel, SsrTask};

/// Ridge-stabilized OLS.
#[derive(Debug, Clone, Copy)]
pub struct Ols {
    /// Ridge coefficient λ (0 = pure OLS; default keeps tiny-β runs finite).
    pub ridge: f64,
}

impl Default for Ols {
    fn default() -> Self {
        Ols { ridge: 1e-6 }
    }
}

impl SsrModel for Ols {
    fn name(&self) -> &'static str {
        "OLS"
    }

    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix {
        task.validate().expect("invalid SSR task");
        let x = task.x_labeled.with_bias_column();
        let xt = x.transpose();
        let mut gram = xt.matmul(&x);
        for i in 0..gram.rows() {
            gram[(i, i)] += self.ridge;
        }
        let rhs = xt.matmul(task.y_labeled);
        // With the ridge the Gram matrix is positive definite unless the
        // ridge is 0 and the design is singular; escalate the ridge once
        // before giving up on a pathological design.
        let w = gram.solve(&rhs).unwrap_or_else(|| {
            let mut g2 = xt.matmul(&x);
            for i in 0..g2.rows() {
                g2[(i, i)] += 1e-3;
            }
            g2.solve(&rhs).expect("ridge-stabilized system must solve")
        });
        task.x_unlabeled.with_bias_column().matmul(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssr::fixtures;

    #[test]
    fn recovers_linear_relationship() {
        // First target is linear in the features: OLS should be near exact.
        let m = Ols::default();
        let err = fixtures::model_mae(&m, 80, 40, 7);
        assert!(err < 0.08, "linear target MAE {err}");
    }

    #[test]
    fn beats_mean_baseline() {
        let m = Ols::default();
        let err = fixtures::model_mae(&m, 60, 30, 3);
        let base = fixtures::mean_baseline_mae(60, 30, 3);
        assert!(err < base * 0.3, "OLS {err} vs baseline {base}");
    }

    #[test]
    fn exact_fit_on_noiseless_line() {
        // y = 2x + 1 exactly.
        let xl = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let yl = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]);
        let xu = Matrix::from_rows(&[vec![10.0]]);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        let pred = Ols::default().fit_predict(&task);
        assert!((pred[(0, 0)] - 21.0).abs() < 1e-3);
    }

    #[test]
    fn survives_collinear_features() {
        // Second column duplicates the first: singular without the ridge.
        let xl = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let yl = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0]]);
        let xu = Matrix::from_rows(&[vec![4.0, 4.0]]);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        let pred = Ols::default().fit_predict(&task);
        assert!((pred[(0, 0)] - 8.0).abs() < 0.01, "got {}", pred[(0, 0)]);
    }

    #[test]
    fn handles_more_features_than_rows() {
        // Underdetermined: 2 rows, 4 features. Ridge keeps it solvable.
        let xl = Matrix::from_rows(&[vec![1.0, 0.0, 2.0, 1.0], vec![0.0, 1.0, 1.0, 2.0]]);
        let yl = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let xu = Matrix::from_rows(&[vec![1.0, 1.0, 3.0, 3.0]]);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        let pred = Ols::default().fit_predict(&task);
        assert!(pred[(0, 0)].is_finite());
    }
}

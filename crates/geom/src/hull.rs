//! Convex hulls via Andrew's monotone chain.
//!
//! Isochrone polygons are produced by hulling the set of road nodes reachable
//! within the walking budget (τ, ω). A convex outline slightly over-covers a
//! truly concave walkshed; the paper's isochrones are similarly smoothed
//! shapefiles, and over-coverage errs on the inclusive side for connectivity
//! features.

use crate::point::Point;
use crate::polygon::Polygon;

/// Cross product of (b-a) x (c-a); positive for a left turn.
#[inline]
fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Convex hull of `points` in counter-clockwise order, collinear points
/// dropped. Returns fewer than 3 points for degenerate inputs (all points
/// collinear or fewer than 3 distinct points).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower chain.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper chain.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Convex hull as a [`Polygon`], or `None` when the input is degenerate
/// (hull has fewer than 3 vertices).
pub fn hull_polygon(points: &[Point]) -> Option<Polygon> {
    let h = convex_hull(points);
    if h.len() >= 3 {
        Some(Polygon::new(h))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 2.0), // interior
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&Point::new(2.0, 2.0)));
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 3.0)];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
        // Signed area positive => CCW.
        let mut s = 0.0;
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            s += a.x * b.y - b.x * a.y;
        }
        assert!(s > 0.0);
    }

    #[test]
    fn collinear_points_degenerate() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 2.0 * i as f64)).collect();
        let h = convex_hull(&pts);
        assert!(h.len() < 3, "collinear set must not form a polygon, got {h:?}");
        assert!(hull_polygon(&pts).is_none());
    }

    #[test]
    fn duplicates_are_collapsed() {
        let p = Point::new(1.0, 1.0);
        let h = convex_hull(&[p, p, p]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn hull_polygon_contains_all_inputs() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 1.0),
            Point::new(6.0, 8.0),
            Point::new(2.0, 5.0),
            Point::new(5.0, 3.0),
        ];
        let poly = hull_polygon(&pts).unwrap();
        for p in &pts {
            // Strict interior or within epsilon of the border.
            let eps = Point::new(p.x, p.y); // identical point
            assert!(
                poly.contains(&eps) || poly.ring().iter().any(|v| v.dist(p) < 1e-9),
                "hull must cover {p:?}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 2.0)]).len(), 1);
    }
}

//! `FeedIndex`: the query views the rest of the system uses.
//!
//! The paper consumes GTFS through two operations (§IV-A):
//!
//! * `F_stops ∩ W_i` — which stops fall in a walking isochrone. The index
//!   exposes stop positions as `(Point, u32)` pairs ready for a spatial
//!   index; the intersection itself happens in `staq-road`/`staq-hoptree`.
//! * `F_trips` — "for each bus stop, all the services that pass through it
//!   during `v_i`", and for each such service the subsequent (or preceding)
//!   stops. [`FeedIndex::departures_at`] and [`FeedIndex::trip_calls`]
//!   provide exactly these.

use crate::model::{Feed, RouteId, ServiceId, StopId, StopTime, TripId};
use crate::time::{DayOfWeek, Stime, TimeInterval};
use staq_geom::Point;

/// A departure event at a stop: `trip` leaves at `departure`, being call
/// number `seq` of that trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Departure {
    pub trip: TripId,
    pub departure: Stime,
    pub seq: u32,
}

/// Precomputed inverted indexes over a [`Feed`].
///
/// Construction is O(|stop_times| log |stop_times|); all queries afterwards
/// are binary searches plus slice scans.
#[derive(Debug, Clone)]
pub struct FeedIndex {
    feed: Feed,
    /// Per-trip ranges into `feed.stop_times` (which is `(trip, seq)`-sorted).
    trip_ranges: Vec<(u32, u32)>,
    /// Departures at each stop, sorted by time.
    stop_departures: Vec<Vec<Departure>>,
    /// Route of each trip (dense copy for cache-friendly lookups).
    trip_route: Vec<RouteId>,
    /// Service of each trip.
    trip_service: Vec<ServiceId>,
}

impl FeedIndex {
    /// Builds the index, taking ownership of the feed. The feed must be
    /// normalized (sorted stop_times); [`crate::parse`] and `staq-synth`
    /// both guarantee this, and it is re-checked here.
    pub fn build(mut feed: Feed) -> Self {
        if !feed.is_normalized() {
            feed.normalize();
        }
        let n_trips = feed.trips.len();
        let mut trip_ranges = vec![(0u32, 0u32); n_trips];
        let mut i = 0usize;
        while i < feed.stop_times.len() {
            let trip = feed.stop_times[i].trip;
            let start = i;
            while i < feed.stop_times.len() && feed.stop_times[i].trip == trip {
                i += 1;
            }
            trip_ranges[trip.idx()] = (start as u32, i as u32);
        }

        let mut stop_departures: Vec<Vec<Departure>> = vec![Vec::new(); feed.stops.len()];
        for st in &feed.stop_times {
            stop_departures[st.stop.idx()].push(Departure {
                trip: st.trip,
                departure: st.departure,
                seq: st.seq,
            });
        }
        for deps in &mut stop_departures {
            deps.sort_by_key(|d| d.departure);
        }

        let trip_route = feed.trips.iter().map(|t| t.route).collect();
        let trip_service = feed.trips.iter().map(|t| t.service).collect();
        FeedIndex { feed, trip_ranges, stop_departures, trip_route, trip_service }
    }

    /// The underlying feed.
    #[inline]
    pub fn feed(&self) -> &Feed {
        &self.feed
    }

    /// Number of stops.
    #[inline]
    pub fn n_stops(&self) -> usize {
        self.feed.stops.len()
    }

    /// Position of a stop.
    #[inline]
    pub fn stop_pos(&self, s: StopId) -> Point {
        self.feed.stops[s.idx()].pos
    }

    /// `(position, raw stop id)` pairs for building spatial indexes.
    pub fn stop_points(&self) -> Vec<(Point, u32)> {
        self.feed.stops.iter().map(|s| (s.pos, s.id.0)).collect()
    }

    /// The ordered calls of `trip` (slice into the canonical stop_times).
    #[inline]
    pub fn trip_calls(&self, trip: TripId) -> &[StopTime] {
        let (a, b) = self.trip_ranges[trip.idx()];
        &self.feed.stop_times[a as usize..b as usize]
    }

    /// Route operated by `trip`.
    #[inline]
    pub fn trip_route(&self, trip: TripId) -> RouteId {
        self.trip_route[trip.idx()]
    }

    /// True when `trip` operates on `day`.
    #[inline]
    pub fn trip_runs_on(&self, trip: TripId, day: DayOfWeek) -> bool {
        self.feed.services[self.trip_service[trip.idx()].idx()].runs_on(day)
    }

    /// All departures from `stop` (any day), sorted by time.
    #[inline]
    pub fn all_departures_at(&self, stop: StopId) -> &[Departure] {
        &self.stop_departures[stop.idx()]
    }

    /// Departures from `stop` within the interval `v`, filtered to services
    /// operating on `v.day` — the paper's `F_trips` retrieval.
    pub fn departures_at<'a>(
        &'a self,
        stop: StopId,
        v: &'a TimeInterval,
    ) -> impl Iterator<Item = Departure> + 'a {
        let deps = &self.stop_departures[stop.idx()];
        let lo = deps.partition_point(|d| d.departure < v.start);
        deps[lo..]
            .iter()
            .take_while(move |d| d.departure < v.end)
            .filter(move |d| self.trip_runs_on(d.trip, v.day))
            .copied()
    }

    /// First departure from `stop` of `trip_filtered` kind at or after `t`
    /// on `day` — the router's "next vehicle" primitive.
    pub fn next_departure(&self, stop: StopId, t: Stime, day: DayOfWeek) -> Option<Departure> {
        let deps = &self.stop_departures[stop.idx()];
        let lo = deps.partition_point(|d| d.departure < t);
        deps[lo..].iter().find(|d| self.trip_runs_on(d.trip, day)).copied()
    }

    /// Mean scheduled headway (seconds between consecutive departures) at
    /// `stop` within `v`; `None` with fewer than two departures.
    pub fn mean_headway(&self, stop: StopId, v: &TimeInterval) -> Option<f64> {
        let times: Vec<Stime> = self.departures_at(stop, v).map(|d| d.departure).collect();
        if times.len() < 2 {
            return None;
        }
        let total: u32 = times.windows(2).map(|w| w[0].until(w[1])).sum();
        Some(total as f64 / (times.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::tests::tiny_feed_text;

    fn index() -> FeedIndex {
        FeedIndex::build(tiny_feed_text().parse().unwrap())
    }

    #[test]
    fn trip_calls_are_ordered() {
        let ix = index();
        let calls = ix.trip_calls(TripId(0));
        assert_eq!(calls.len(), 2);
        assert!(calls[0].seq < calls[1].seq);
        assert_eq!(calls[0].stop, StopId(0));
    }

    #[test]
    fn departures_filtered_by_interval_and_day() {
        let ix = index();
        let am = TimeInterval::am_peak();
        let deps: Vec<_> = ix.departures_at(StopId(0), &am).collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].departure, Stime::hms(7, 0, 30));

        // Sunday: weekday-only service doesn't run.
        let sunday = TimeInterval::new(Stime::hours(7), Stime::hours(9), DayOfWeek::Sunday, "sun");
        assert_eq!(ix.departures_at(StopId(0), &sunday).count(), 0);

        // Window after the departure.
        let late =
            TimeInterval::new(Stime::hours(10), Stime::hours(12), DayOfWeek::Tuesday, "late");
        assert_eq!(ix.departures_at(StopId(0), &late).count(), 0);
    }

    #[test]
    fn next_departure_respects_time_and_day() {
        let ix = index();
        let d = ix.next_departure(StopId(0), Stime::hours(7), DayOfWeek::Tuesday).unwrap();
        assert_eq!(d.departure, Stime::hms(7, 0, 30));
        assert!(ix.next_departure(StopId(0), Stime::hours(8), DayOfWeek::Tuesday).is_none());
        assert!(ix.next_departure(StopId(0), Stime::hours(7), DayOfWeek::Sunday).is_none());
    }

    #[test]
    fn mean_headway_requires_two_departures() {
        let ix = index();
        assert!(ix.mean_headway(StopId(0), &TimeInterval::am_peak()).is_none());
    }

    #[test]
    fn stop_points_expose_all_stops() {
        let ix = index();
        let pts = ix.stop_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1, 0);
    }

    #[test]
    fn builds_from_unnormalized_feed() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times.reverse();
        let ix = FeedIndex::build(feed);
        assert_eq!(ix.trip_calls(TripId(0)).len(), 2);
        assert!(ix.feed().is_normalized());
    }
}

//! Property tests for the road crate: Dijkstra against a Bellman-Ford
//! reference on random graphs, and isochrone monotonicity.

use proptest::prelude::*;
use staq_geom::Point;
use staq_road::dijkstra::{bounded_walk_times, walk_time, walk_times_from};
use staq_road::{NodeId, RoadGraph, RoadGraphBuilder};

/// A random directed graph of `n` nodes and some edges.
fn random_graph() -> impl Strategy<Value = RoadGraph> {
    (2usize..14, proptest::collection::vec((0usize..14, 0usize..14, 1.0f32..100.0), 1..40))
        .prop_map(|(n, edges)| {
            let mut b = RoadGraphBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(Point::new(i as f64 * 10.0, (i * i % 7) as f64)))
                .collect();
            for (u, v, w) in edges {
                let (u, v) = (u % n, v % n);
                b.add_edge(ids[u], ids[v], w);
            }
            b.build()
        })
}

/// Bellman-Ford reference.
fn bellman_ford(g: &RoadGraph, src: NodeId) -> Vec<f64> {
    let n = g.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[src.idx()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u].is_infinite() {
                continue;
            }
            for (v, w) in g.out_edges(NodeId(u as u32)) {
                let cand = dist[u] + w as f64;
                if cand < dist[v.idx()] - 1e-12 {
                    dist[v.idx()] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in random_graph()) {
        let src = NodeId(0);
        let fast = walk_times_from(&g, src);
        let slow = bellman_ford(&g, src);
        for (a, b) in fast.iter().zip(&slow) {
            if a.is_infinite() || b.is_infinite() {
                prop_assert_eq!(a.is_infinite(), b.is_infinite());
            } else {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn one_to_one_agrees_with_one_to_all(g in random_graph(), dst in 0usize..14) {
        let src = NodeId(0);
        let dst = NodeId((dst % g.n_nodes()) as u32);
        let all = walk_times_from(&g, src);
        match walk_time(&g, src, dst) {
            Some(t) => prop_assert!((t - all[dst.idx()]).abs() < 1e-9),
            None => prop_assert!(all[dst.idx()].is_infinite()),
        }
    }

    #[test]
    fn bounded_is_prefix_of_full(g in random_graph(), budget in 0.0f64..300.0) {
        let src = NodeId(0);
        let full = walk_times_from(&g, src);
        let bounded = bounded_walk_times(&g, src, budget);
        // Everything returned is within budget and matches the full dist.
        for &(n, t) in &bounded {
            prop_assert!(t <= budget + 1e-9);
            prop_assert!((t - full[n.idx()]).abs() < 1e-9);
        }
        // Nothing within budget is missed.
        let returned: std::collections::HashSet<u32> =
            bounded.iter().map(|&(n, _)| n.0).collect();
        for (i, &d) in full.iter().enumerate() {
            if d <= budget {
                prop_assert!(returned.contains(&(i as u32)), "node {i} at {d} missed");
            }
        }
    }

    #[test]
    fn triangle_inequality_over_shortest_paths(g in random_graph()) {
        // d(0, v) <= d(0, u) + w(u, v) for every edge (u, v).
        let dist = walk_times_from(&g, NodeId(0));
        for u in 0..g.n_nodes() {
            if dist[u].is_infinite() {
                continue;
            }
            for (v, w) in g.out_edges(NodeId(u as u32)) {
                prop_assert!(dist[v.idx()] <= dist[u] + w as f64 + 1e-9);
            }
        }
    }
}

//! The hop-tree store: every zone's outbound and inbound trees for one
//! interval, plus the isochrones and spatial indexes the feature extractor
//! needs. This is the paper's offline artifact ("the tree is saved such
//! that it can be retrieved efficiently").

use crate::build::{build_tree, BuildContext};
use crate::tree::{Direction, HopTree};
use staq_geom::KdTree;
use staq_gtfs::time::TimeInterval;
use staq_road::{Isochrone, IsochroneParams, NodeSnapper};
use staq_synth::{City, ZoneId};
use std::collections::HashSet;

/// All per-zone offline artifacts for one `(city, interval)`.
#[derive(Debug)]
pub struct HopTreeStore {
    pub interval: TimeInterval,
    pub params: IsochroneParams,
    outbound: Vec<HopTree>,
    inbound: Vec<HopTree>,
    isochrones: Vec<Isochrone>,
    /// kd-tree over zone centroids (shared by interchange search).
    zone_tree: KdTree,
    n_zones: usize,
}

impl HopTreeStore {
    /// Builds isochrones and both tree families for every zone.
    ///
    /// Cost is the paper's offline pre-processing step; it is linear in
    /// |Z| x (isochrone size + departures scanned), and far cheaper than
    /// labeling (measured by the `hoptree` bench).
    pub fn build(city: &City, interval: &TimeInterval, params: &IsochroneParams) -> Self {
        let zone_tree = KdTree::build(&city.zone_points());
        let snapper = NodeSnapper::new(&city.road);
        let ctx = BuildContext::new(&city.feed, &zone_tree, params.max_radius_m());

        let mut isochrones = Vec::with_capacity(city.n_zones());
        let mut outbound = Vec::with_capacity(city.n_zones());
        let mut inbound = Vec::with_capacity(city.n_zones());
        for zone in &city.zones {
            let w = Isochrone::grow(
                &city.road,
                zone.centroid,
                snapper.snap_unchecked(&zone.centroid),
                params,
            );
            let ob =
                build_tree(&ctx, zone.id, &w, params.max_radius_m(), interval, Direction::Outbound);
            let ib =
                build_tree(&ctx, zone.id, &w, params.max_radius_m(), interval, Direction::Inbound);
            isochrones.push(w);
            outbound.push(ob);
            inbound.push(ib);
        }
        HopTreeStore {
            interval: interval.clone(),
            params: *params,
            outbound,
            inbound,
            isochrones,
            zone_tree,
            n_zones: city.n_zones(),
        }
    }

    /// Reassembles a store from externally supplied trees (the persistence
    /// path): isochrones and the zone index are rebuilt from the city, the
    /// trees are taken as-is. Panics when tree counts don't match the city.
    pub fn from_parts(
        city: &City,
        interval: TimeInterval,
        params: IsochroneParams,
        outbound: Vec<HopTree>,
        inbound: Vec<HopTree>,
    ) -> Self {
        assert_eq!(outbound.len(), city.n_zones(), "outbound tree count mismatch");
        assert_eq!(inbound.len(), city.n_zones(), "inbound tree count mismatch");
        let zone_tree = KdTree::build(&city.zone_points());
        let snapper = NodeSnapper::new(&city.road);
        let isochrones = city
            .zones
            .iter()
            .map(|z| {
                Isochrone::grow(
                    &city.road,
                    z.centroid,
                    snapper.snap_unchecked(&z.centroid),
                    &params,
                )
            })
            .collect();
        HopTreeStore {
            interval,
            params,
            outbound,
            inbound,
            isochrones,
            zone_tree,
            n_zones: city.n_zones(),
        }
    }

    /// Number of zones covered.
    #[inline]
    pub fn n_zones(&self) -> usize {
        self.n_zones
    }

    /// Outbound tree `OB_z^v`.
    #[inline]
    pub fn outbound(&self, z: ZoneId) -> &HopTree {
        &self.outbound[z.idx()]
    }

    /// Inbound tree `IB_z^v`.
    #[inline]
    pub fn inbound(&self, z: ZoneId) -> &HopTree {
        &self.inbound[z.idx()]
    }

    /// Walking isochrone `W_z`.
    #[inline]
    pub fn isochrone(&self, z: ZoneId) -> &Isochrone {
        &self.isochrones[z.idx()]
    }

    /// kd-tree over zone centroids.
    #[inline]
    pub fn zone_tree(&self) -> &KdTree {
        &self.zone_tree
    }

    /// Zones reachable from `z` within `h` outbound hops (chained trees,
    /// paper: "they can also be chained easily to provide information after
    /// multiple (h) hops"). `h = 0` returns just `z`.
    pub fn reachable_within(&self, z: ZoneId, h: usize) -> HashSet<ZoneId> {
        let mut seen: HashSet<ZoneId> = HashSet::from([z]);
        let mut frontier = vec![z];
        for _ in 0..h {
            let mut next = Vec::new();
            for &f in &frontier {
                for leaf in self.outbound(f).leaves() {
                    if seen.insert(leaf.zone) {
                        next.push(leaf.zone);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        seen
    }

    /// Rebuilds the trees and isochrone of a subset of zones in place —
    /// the incremental path for dynamic scenario edits (a new bus stop only
    /// affects zones whose walkshed covers it).
    pub fn rebuild_zones(&mut self, city: &City, zones: &[ZoneId]) {
        let snapper = NodeSnapper::new(&city.road);
        let ctx = BuildContext::new(&city.feed, &self.zone_tree, self.params.max_radius_m());
        for &z in zones {
            let centroid = city.zone_centroid(z);
            let w = Isochrone::grow(
                &city.road,
                centroid,
                snapper.snap_unchecked(&centroid),
                &self.params,
            );
            self.outbound[z.idx()] = build_tree(
                &ctx,
                z,
                &w,
                self.params.max_radius_m(),
                &self.interval,
                Direction::Outbound,
            );
            self.inbound[z.idx()] = build_tree(
                &ctx,
                z,
                &w,
                self.params.max_radius_m(),
                &self.interval,
                Direction::Inbound,
            );
            self.isochrones[z.idx()] = w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::CityConfig;

    fn store() -> (City, HopTreeStore) {
        let city = City::generate(&CityConfig::small(42));
        let s = HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        (city, s)
    }

    #[test]
    fn covers_every_zone() {
        let (city, s) = store();
        assert_eq!(s.n_zones(), city.n_zones());
        // Most zones in a city with decent coverage have some connectivity.
        let connected =
            (0..s.n_zones()).filter(|&z| s.outbound(ZoneId(z as u32)).n_leaves() > 0).count();
        assert!(connected * 2 > s.n_zones(), "only {connected}/{} zones connected", s.n_zones());
    }

    #[test]
    fn chaining_is_monotone_in_h() {
        let (city, s) = store();
        let z = ZoneId(s.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let h0 = s.reachable_within(z, 0);
        let h1 = s.reachable_within(z, 1);
        let h2 = s.reachable_within(z, 2);
        assert_eq!(h0.len(), 1);
        assert!(h1.len() >= h0.len());
        assert!(h2.len() >= h1.len());
        assert!(h1.is_subset(&h2));
        assert!(h2.len() > h1.len(), "a second hop should reach new zones from the core");
    }

    #[test]
    fn trees_are_interval_sensitive() {
        // Evening headways are 3x the peak's, so hop frequencies (leaf
        // counters) must be lower in the evening for a connected zone.
        use staq_gtfs::time::{DayOfWeek, Stime};
        let city = City::generate(&CityConfig::small(42));
        let am = TimeInterval::am_peak();
        let evening =
            TimeInterval::new(Stime::hours(19), Stime::hours(21), DayOfWeek::Tuesday, "evening");
        let params = IsochroneParams::default();
        let s_am = HopTreeStore::build(&city, &am, &params);
        let s_ev = HopTreeStore::build(&city, &evening, &params);
        let z = ZoneId(s_am.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let count =
            |s: &HopTreeStore| -> u32 { s.outbound(z).leaves().iter().map(|l| l.count).sum() };
        assert!(
            count(&s_am) > count(&s_ev),
            "AM peak hops {} should exceed evening {}",
            count(&s_am),
            count(&s_ev)
        );
    }

    #[test]
    fn rebuild_zones_is_idempotent_without_changes() {
        let (city, mut s) = store();
        let z = ZoneId(3);
        let before = s.outbound(z).clone();
        s.rebuild_zones(&city, &[z]);
        assert_eq!(*s.outbound(z), before);
    }

    #[test]
    fn isochrones_contain_their_origin() {
        let (city, s) = store();
        for z in 0..s.n_zones() {
            let zid = ZoneId(z as u32);
            let c = city.zone_centroid(zid);
            let iso = s.isochrone(zid);
            // The centroid is either strictly inside the hull or is itself a
            // hull vertex (when the walkshed collapses toward the snapped
            // node, the origin sits on the boundary).
            let on_ring = iso.shape.ring().iter().any(|v| v.dist(&c) < 1e-6);
            assert!(iso.contains(&c) || on_ring, "zone {z} centroid escapes its walkshed");
        }
    }
}

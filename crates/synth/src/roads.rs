//! Synthetic road/walking network: a perturbed grid with dropout and
//! diagonal arterials, guaranteed connected.
//!
//! Urban street networks have near-grid topology with mean degree ≈ 3–4 and
//! occasional diagonal arterials; dropout breaks the perfect-grid symmetry
//! that would otherwise make every shortest path a Manhattan path. A
//! union-find pass re-links any components the dropout disconnects, so
//! walking isochrones and access legs never dead-end on an island.

use crate::config::CityConfig;
use rand::rngs::StdRng;
use rand::RngExt;
use staq_geom::Point;
use staq_road::{NodeId, RoadGraph, RoadGraphBuilder};

/// Walking speed used to convert edge length to traversal seconds. Matches
/// the paper's ω = 4.5 km/h.
const OMEGA_MPS: f64 = 4.5 * 1000.0 / 3600.0;

/// Simple union-find over node indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Generates the road graph for `config`.
pub fn generate(config: &CityConfig, rng: &mut StdRng) -> RoadGraph {
    let g = ((config.side_m / config.road_spacing_m).round() as usize).max(2);
    let mut b = RoadGraphBuilder::new();
    let cell = config.side_m / g as f64;

    // Nodes: jittered grid.
    let mut ids = Vec::with_capacity((g + 1) * (g + 1));
    for j in 0..=g {
        for i in 0..=g {
            let jx = rng.random_range(-0.2..0.2) * cell;
            let jy = rng.random_range(-0.2..0.2) * cell;
            ids.push(b.add_node(Point::new(i as f64 * cell + jx, j as f64 * cell + jy)));
        }
    }
    let at = |i: usize, j: usize| ids[j * (g + 1) + i];

    // Candidate grid edges with dropout.
    let mut kept: Vec<(NodeId, NodeId)> = Vec::new();
    let mut dropped: Vec<(NodeId, NodeId)> = Vec::new();
    for j in 0..=g {
        for i in 0..=g {
            if i < g {
                let e = (at(i, j), at(i + 1, j));
                if rng.random_range(0.0..1.0) < config.road_dropout {
                    dropped.push(e);
                } else {
                    kept.push(e);
                }
            }
            if j < g {
                let e = (at(i, j), at(i, j + 1));
                if rng.random_range(0.0..1.0) < config.road_dropout {
                    dropped.push(e);
                } else {
                    kept.push(e);
                }
            }
        }
    }

    // Diagonal arterials through the center: faster crossings that make the
    // network non-Manhattan (about 1 per 2 km of side).
    let n_diag = ((config.side_m / 2000.0).round() as usize).max(1);
    for d in 0..n_diag {
        let off = (d + 1) * g / (n_diag + 1);
        for k in 0..g {
            let (i1, j1) = (k, (k + off) % (g + 1));
            let (i2, j2) = (k + 1, (k + 1 + off) % (g + 1));
            if j2 == (j1 + 1) % (g + 1) && j1 < g {
                kept.push((at(i1, j1), at(i2, j1 + 1)));
            }
        }
    }

    // Connectivity repair: union kept edges, then re-add dropped edges that
    // bridge components (cheapest honest repair — the edge existed in the
    // underlying grid anyway).
    let n_nodes = b.n_nodes();
    let mut dsu = Dsu::new(n_nodes);
    for &(u, v) in &kept {
        dsu.union(u.0, v.0);
    }
    for &(u, v) in &dropped {
        if dsu.find(u.0) != dsu.find(v.0) {
            dsu.union(u.0, v.0);
            kept.push((u, v));
        }
    }

    for (u, v) in kept {
        b.add_walk_edge(u, v, OMEGA_MPS);
    }
    let graph = b.build();
    graph.check_invariants().expect("generated road graph invalid");
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use staq_road::dijkstra::walk_times_from;

    fn gen(seed: u64) -> RoadGraph {
        let cfg = CityConfig::small(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    #[test]
    fn graph_is_connected() {
        let g = gen(3);
        let dist = walk_times_from(&g, NodeId(0));
        let unreachable = dist.iter().filter(|d| d.is_infinite()).count();
        assert_eq!(unreachable, 0, "{unreachable} of {} nodes unreachable", g.n_nodes());
    }

    #[test]
    fn degree_distribution_is_urban() {
        let g = gen(5);
        let mean_deg = (0..g.n_nodes()).map(|n| g.degree(NodeId(n as u32))).sum::<usize>() as f64
            / g.n_nodes() as f64;
        // Bidirectional edges: grid interior degree 4 (out-degree counts each
        // direction once), dropout trims it.
        assert!((2.5..4.5).contains(&mean_deg), "mean out-degree {mean_deg}");
    }

    #[test]
    fn edge_costs_are_walking_times() {
        let g = gen(7);
        for n in 0..g.n_nodes() {
            for (t, c) in g.out_edges(NodeId(n as u32)) {
                let d = g.pos(NodeId(n as u32)).dist(&g.pos(t));
                assert!((c as f64 - d / OMEGA_MPS).abs() < 0.5, "cost {c} for {d}m");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(11);
        let b = gen(11);
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
    }

    #[test]
    fn dropout_removes_edges() {
        let cfg_no = CityConfig { road_dropout: 0.0, ..CityConfig::small(1) };
        let cfg_hi = CityConfig { road_dropout: 0.3, ..CityConfig::small(1) };
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let full = generate(&cfg_no, &mut r1);
        let cut = generate(&cfg_hi, &mut r2);
        assert!(cut.n_edges() < full.n_edges());
    }
}

//! # staq-repro
//!
//! Workspace umbrella for the STAQ reproduction: re-exports every crate
//! under one roof so the `examples/` and `tests/` at the repository root
//! can exercise the whole stack, and so downstream users can depend on a
//! single crate.
//!
//! ```no_run
//! use staq_repro::prelude::*;
//!
//! let city = City::generate(&CityConfig::small(7));
//! let engine = AccessEngine::new(city, PipelineConfig::default());
//! let answer = engine.query(&AccessQuery::MeanAccess, PoiCategory::School);
//! println!("{answer:?}");
//! ```

pub use staq_access as access;
pub use staq_core as core;
pub use staq_geom as geom;
pub use staq_gtfs as gtfs;
pub use staq_hoptree as hoptree;
pub use staq_ml as ml;
pub use staq_road as road;
pub use staq_rt as rt;
pub use staq_synth as synth;
pub use staq_todam as todam;
pub use staq_transit as transit;

/// The names most programs need.
pub mod prelude {
    pub use staq_access::{AccessQuery, DemographicWeight, QueryAnswer, ZoneMeasures};
    pub use staq_core::{
        evaluate, AccessEngine, ApproxConfig, EngineOptions, EvalReport, NaiveResult,
        OfflineArtifacts, PipelineConfig, SsrPipeline,
    };
    pub use staq_geom::Point;
    pub use staq_gtfs::time::TimeInterval;
    pub use staq_ml::ModelKind;
    pub use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
    pub use staq_todam::TodamSpec;
    pub use staq_transit::CostKind;
}

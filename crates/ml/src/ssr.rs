//! The semi-supervised regression task and model interface.

use crate::adjacency::SparseAdj;
use crate::linalg::Matrix;

/// A semi-supervised regression problem instance (§IV-D): "a feature set is
/// given for all L ∪ U, and the target vector is given for L. The goal is to
/// learn the labeling for U."
///
/// Row convention: labeled rows first. `adjacency` (needed only by the GNN)
/// indexes rows in the same labeled-then-unlabeled order.
pub struct SsrTask<'a> {
    /// Features of labeled zones, `n_l x d`.
    pub x_labeled: &'a Matrix,
    /// Targets of labeled zones, `n_l x m` (m = 2: MAC and ACSD).
    pub y_labeled: &'a Matrix,
    /// Features of unlabeled zones, `n_u x d`.
    pub x_unlabeled: &'a Matrix,
    /// Zone adjacency over all `n_l + n_u` rows (GNN only).
    pub adjacency: Option<&'a SparseAdj>,
    /// Seed for any stochastic training.
    pub seed: u64,
}

impl<'a> SsrTask<'a> {
    /// Validates shape agreement.
    pub fn validate(&self) -> Result<(), String> {
        if self.x_labeled.cols() != self.x_unlabeled.cols() {
            return Err("labeled/unlabeled feature dimension mismatch".into());
        }
        if self.x_labeled.rows() != self.y_labeled.rows() {
            return Err("labeled feature/target row mismatch".into());
        }
        if self.x_labeled.rows() == 0 {
            return Err("no labeled rows".into());
        }
        if let Some(adj) = self.adjacency {
            if adj.n() != self.x_labeled.rows() + self.x_unlabeled.rows() {
                return Err("adjacency size mismatch".into());
            }
        }
        Ok(())
    }
}

/// A semi-supervised regressor: fit on the task, predict the unlabeled
/// targets (`n_u x m`).
pub trait SsrModel {
    /// Model name for reports ("MLP", "COREG", ...).
    fn name(&self) -> &'static str;

    /// Trains and predicts the unlabeled targets.
    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix;
}

/// The five models evaluated in the paper (§V-A), plus helpers to
/// instantiate each with its default hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    Ols,
    Mlp,
    Coreg,
    MeanTeacher,
    Gnn,
}

impl ModelKind {
    /// All five models, in the paper's reporting order.
    pub const ALL: [ModelKind; 5] =
        [ModelKind::Ols, ModelKind::Mlp, ModelKind::Coreg, ModelKind::MeanTeacher, ModelKind::Gnn];

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            ModelKind::Ols => "OLS",
            ModelKind::Mlp => "MLP",
            ModelKind::Coreg => "COREG",
            ModelKind::MeanTeacher => "MT",
            ModelKind::Gnn => "GNN",
        }
    }

    /// Instantiates the model with default hyperparameters.
    pub fn build(self) -> Box<dyn SsrModel> {
        match self {
            ModelKind::Ols => Box::new(crate::ols::Ols::default()),
            ModelKind::Mlp => Box::new(crate::mlp::MlpRegressor::default()),
            ModelKind::Coreg => Box::new(crate::coreg::Coreg::default()),
            ModelKind::MeanTeacher => Box::new(crate::mean_teacher::MeanTeacher::default()),
            ModelKind::Gnn => Box::new(crate::gnn::Gcn::default()),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared test fixtures: a synthetic regression problem with spatial
/// structure, used by every model's tests.
#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;

    /// y = 3*x0 - 2*x1 + 0.5*x2 + noise; second target = x0^2 scaled.
    /// Returns (x_l, y_l, x_u, y_u_truth).
    pub fn synthetic(n_l: usize, n_u: usize, seed: u64) -> (Matrix, Matrix, Matrix, Matrix) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (u32::MAX as f64) * 2.0 - 1.0
        };
        let gen = |n: usize, next: &mut dyn FnMut() -> f64| {
            let mut x = Matrix::zeros(n, 3);
            let mut y = Matrix::zeros(n, 2);
            for i in 0..n {
                let (a, b, c) = (next(), next(), next());
                x.row_mut(i).copy_from_slice(&[a, b, c]);
                let noise = next() * 0.05;
                y[(i, 0)] = 3.0 * a - 2.0 * b + 0.5 * c + noise;
                y[(i, 1)] = 2.0 * a * a + 0.2 * c;
            }
            (x, y)
        };
        let (xl, yl) = gen(n_l, &mut next);
        let (xu, yu) = gen(n_u, &mut next);
        (xl, yl, xu, yu)
    }

    /// MAE of a model on the synthetic problem's first target.
    pub fn model_mae(model: &dyn SsrModel, n_l: usize, n_u: usize, seed: u64) -> f64 {
        let (xl, yl, xu, yu) = synthetic(n_l, n_u, seed);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed };
        task.validate().unwrap();
        let pred = model.fit_predict(&task);
        assert_eq!(pred.rows(), n_u);
        assert_eq!(pred.cols(), 2);
        crate::metrics::mae(&yu.col_vec(0), &pred.col_vec(0))
    }

    /// Baseline MAE of predicting the labeled mean.
    pub fn mean_baseline_mae(n_l: usize, n_u: usize, seed: u64) -> f64 {
        let (_, yl, _, yu) = synthetic(n_l, n_u, seed);
        let mean = yl.col_vec(0).iter().sum::<f64>() / n_l as f64;
        let preds = vec![mean; n_u];
        crate::metrics::mae(&yu.col_vec(0), &preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_shape_bugs() {
        let x = Matrix::zeros(4, 3);
        let y = Matrix::zeros(4, 2);
        let xu = Matrix::zeros(6, 3);
        let ok =
            SsrTask { x_labeled: &x, y_labeled: &y, x_unlabeled: &xu, adjacency: None, seed: 0 };
        assert!(ok.validate().is_ok());

        let bad_dim = Matrix::zeros(6, 2);
        let t = SsrTask {
            x_labeled: &x,
            y_labeled: &y,
            x_unlabeled: &bad_dim,
            adjacency: None,
            seed: 0,
        };
        assert!(t.validate().is_err());

        let bad_y = Matrix::zeros(3, 2);
        let t = SsrTask {
            x_labeled: &x,
            y_labeled: &bad_y,
            x_unlabeled: &xu,
            adjacency: None,
            seed: 0,
        };
        assert!(t.validate().is_err());

        let empty = Matrix::zeros(0, 3);
        let ey = Matrix::zeros(0, 2);
        let t = SsrTask {
            x_labeled: &empty,
            y_labeled: &ey,
            x_unlabeled: &xu,
            adjacency: None,
            seed: 0,
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn model_kind_builds_all() {
        for kind in ModelKind::ALL {
            let model = kind.build();
            assert_eq!(model.name(), kind.label());
        }
    }
}

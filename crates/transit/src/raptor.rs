//! RAPTOR: round-based earliest-arrival routing over trip patterns.
//!
//! Round `k` computes the earliest arrival at every stop using at most `k`
//! boardings; foot transfers follow each round. Journeys are reconstructed
//! from per-round labels into [`Journey`] legs so the GAC's components
//! (access walk, wait, in-vehicle, egress, transfers) fall out directly.
//!
//! This is the workhorse behind every shortest-path query (SPQ) in the
//! paper: TODAM labeling (§IV-D) calls [`Raptor::query`] once per sampled
//! trip.
//!
//! ## Pruning
//!
//! The router prunes **exactly** — the returned journey is leg-for-leg
//! identical to the unpruned scan (see `tests/prune_equivalence.rs`):
//!
//! * **Target pruning.** The egress stop set is computed *before* the
//!   rounds loop and a best-known-arrival bound, seeded by the direct-walk
//!   fallback, tightens whenever an improved stop completes a journey. An
//!   improvement that arrives *after* the bound can never sit on the
//!   returned journey's label chain (every chain arrival is at most the
//!   optimal total, which the bound never undercuts), so it is skipped.
//!   The comparison is strict (`>`): arrivals that tie the bound are kept,
//!   which is what makes the journeys — not just the arrival times —
//!   identical.
//! * **Local pruning.** A single per-stop best-arrival array (`tau_star`)
//!   replaces the former `(max_boardings + 1) × n_stops` arrival matrix and
//!   its per-round copy-forward; boarding reads `tau_prev`, last round's
//!   snapshot, preserving the bounded-boardings semantics.
//! * **Early exit.** When every marked stop is already past the bound, no
//!   later round can produce a journey that beats or ties it, so the
//!   remaining rounds are cut (`raptor.rounds_cut`).
//! * **Dense queue.** The per-round pattern queue is a generation-stamped
//!   `Vec` indexed by pattern id instead of a rebuilt `HashMap`, and a stop
//!   bitmask deduplicates `marked` so a stop improved twice in one round is
//!   processed once.
//!
//! Access/egress isochrones go through the per-router
//! [`AccessCache`](crate::network::AccessCache): labeling re-routes the
//! same zone centroids and POI destinations thousands of times per pass,
//! so the bounded road-graph Dijkstra memoizes by (quantized) point.
//!
//! [`Raptor::reference`] builds the same router with every pruning rule
//! disabled — the equivalence oracle for tests and benches.

use crate::journey::{Journey, Leg};
use crate::network::{AccessCache, TransitNetwork};
use crate::pareto::{Bag, ParetoLabel};
use crate::shared_cache::{QueryCache, SharedAccessCache};
use staq_geom::Point;
use staq_gtfs::model::StopId;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_obs::Counter;
use staq_road::dijkstra::WalkScratch;
use staq_road::NodeId;
use std::cell::RefCell;

const INF: u32 = u32::MAX;

/// Queries answered across all routers in the process.
static QUERIES: Counter = Counter::new("raptor.queries");
/// RAPTOR rounds that scanned patterns (rounds skipped because no stop was
/// marked don't count — they do no routing work).
static ROUNDS: Counter = Counter::new("raptor.rounds");
/// Pattern scans across all rounds (the inner-loop unit of work).
static PATTERNS_SCANNED: Counter = Counter::new("raptor.patterns_scanned");
/// Pattern-enqueue attempts suppressed by target pruning: a marked stop
/// whose best arrival already trails the destination bound contributes its
/// pattern list here instead of to the queue.
static PATTERNS_PRUNED: Counter = Counter::new("raptor.patterns_pruned");
/// Rounds cut by the bound-based early exit (remaining rounds that would
/// have scanned, summed per query).
static ROUNDS_CUT: Counter = Counter::new("raptor.rounds_cut");
/// Pattern-enqueue attempts skipped because the pattern runs no trip at
/// all on the query day — `earliest_trip` could never board it.
static PATTERNS_DAY_SKIPPED: Counter = Counter::new("raptor.patterns_day_skipped");

/// The best completed journey as of the end of one round — the raw
/// material of a Pareto frontier over (arrival, transfers): round `k`'s
/// best total is the earliest arrival achievable with at most `k`
/// boardings.
#[derive(Debug, Clone, Copy)]
struct RoundBest {
    round: usize,
    total: u32,
    stop: StopId,
    egress_walk: u32,
}

/// How a stop's arrival time was achieved in a given round.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Label {
    /// Not improved this round (carried over from the previous round).
    None,
    /// Walked from the origin (round 0 only).
    Access { walk_secs: u32 },
    /// Rode a trip of `pattern` from `board_pos` to `alight_pos`.
    Ride { pattern: u32, trip_idx: u32, board_pos: u32, alight_pos: u32 },
    /// Foot transfer from another stop improved this round.
    Foot { from: StopId, walk_secs: u32 },
}

/// Per-router query state, allocated once in [`Raptor::new`] and cleared —
/// never reallocated — between queries. Labeling runs millions of SPQs per
/// pipeline pass (§IV-E), so the allocator must stay off this path.
struct Scratch {
    /// `tau_star[s]`: best-known arrival at `s` across all rounds so far —
    /// the local-pruning array. Replaces the old per-round arrival matrix
    /// (and its O(n_stops) copy-forward per round).
    tau_star: Vec<u32>,
    /// `tau_star` as of the end of the previous round; boarding reads this
    /// so round `k` only extends journeys with ≤ `k - 1` boardings.
    tau_prev: Vec<u32>,
    /// `labels[k][s]`: how round `k` achieved its arrival at `s`.
    labels: Vec<Vec<Label>>,
    /// Stops improved in the current round (deduplicated).
    marked: Vec<StopId>,
    /// Ride-improved stops, snapshotted before the foot-transfer relaxation.
    ride_marked: Vec<StopId>,
    /// Membership bitmask for `marked`: a stop improved twice in one round
    /// is processed once.
    stop_marked: Vec<bool>,
    /// Per-pattern earliest marked position, valid when the generation
    /// stamp matches the current round.
    queue_pos: Vec<u32>,
    /// Generation stamps for `queue_pos`.
    queue_gen: Vec<u32>,
    /// Current queue generation (bumped per round).
    queue_round: u32,
    /// Pattern ids touched this round, sorted for a deterministic scan.
    queue_patterns: Vec<u32>,
    /// Egress walk seconds per stop, valid when `egress_gen` matches.
    egress_walk: Vec<u32>,
    /// Generation stamps for `egress_walk`.
    egress_gen: Vec<u32>,
    /// Current egress generation (bumped per query).
    egress_round: u32,
    /// Road-graph Dijkstra state for the access/egress isochrones.
    walk: WalkScratch,
    /// Isochrone output: road nodes within the walk budget.
    walk_nodes: Vec<(NodeId, f64)>,
    /// Staging buffer for isochrones on a cache miss.
    access_tmp: Vec<(StopId, u32)>,
    /// Memoized access/egress isochrones (quantized-point keyed): this
    /// router's private arena, or a handle onto the fleet-shared cache.
    cache: QueryCache,
}

impl Scratch {
    fn new(rounds: usize, n_stops: usize, n_patterns: usize, cache: QueryCache) -> Self {
        Scratch {
            tau_star: vec![INF; n_stops],
            tau_prev: vec![INF; n_stops],
            labels: vec![vec![Label::None; n_stops]; rounds + 1],
            marked: Vec::new(),
            ride_marked: Vec::new(),
            stop_marked: vec![false; n_stops],
            queue_pos: vec![0; n_patterns],
            queue_gen: vec![0; n_patterns],
            queue_round: 0,
            queue_patterns: Vec::new(),
            egress_walk: vec![0; n_stops],
            egress_gen: vec![0; n_stops],
            egress_round: 0,
            walk: WalkScratch::new(),
            walk_nodes: Vec::new(),
            access_tmp: Vec::new(),
            cache,
        }
    }
}

/// The RAPTOR router over a prepared [`TransitNetwork`].
///
/// Holds reusable query scratch behind a `RefCell`, which makes a router
/// `!Sync` — share networks across threads, not routers. Every existing
/// call-site already builds one router per worker.
pub struct Raptor<'n, 'a> {
    net: &'n TransitNetwork<'a>,
    scratch: RefCell<Scratch>,
    /// Target pruning + early exit on; off only for the reference oracle.
    pruning: bool,
}

impl<'n, 'a> Raptor<'n, 'a> {
    /// Wraps a prepared network. Pruning is on: this is the production
    /// router.
    pub fn new(net: &'n TransitNetwork<'a>) -> Self {
        Self::with_pruning(net, true)
    }

    /// The unpruned reference router: every round scans every touched
    /// pattern, exactly like the pre-pruning implementation. Exists so
    /// tests and benches can assert the pruned router returns leg-for-leg
    /// identical journeys.
    pub fn reference(net: &'n TransitNetwork<'a>) -> Self {
        Self::with_pruning(net, false)
    }

    /// Production router whose access/egress isochrones go through the
    /// fleet-shared cache instead of a private one. Results are
    /// bit-identical to [`Raptor::new`] — the memo changes who computes an
    /// isochrone, never its value.
    pub fn with_shared_cache(
        net: &'n TransitNetwork<'a>,
        shared: &std::sync::Arc<SharedAccessCache>,
    ) -> Self {
        Self::with_cache(net, true, QueryCache::Shared(shared.handle()))
    }

    fn with_pruning(net: &'n TransitNetwork<'a>, pruning: bool) -> Self {
        Self::with_cache(net, pruning, QueryCache::Private(AccessCache::new()))
    }

    fn with_cache(net: &'n TransitNetwork<'a>, pruning: bool, cache: QueryCache) -> Self {
        let scratch = RefCell::new(Scratch::new(
            net.cfg.max_boardings,
            net.n_stops(),
            net.n_patterns(),
            cache,
        ));
        Raptor { net, scratch, pruning }
    }

    /// Earliest-arriving journey from `origin` to `dest` departing at
    /// `depart` on `day`. Always returns a journey: the walk-only fallback
    /// guarantees finiteness even across a severed network.
    pub fn query(&self, origin: &Point, dest: &Point, depart: Stime, day: DayOfWeek) -> Journey {
        self.query_inner(origin, dest, depart, day, None)
    }

    fn query_inner(
        &self,
        origin: &Point,
        dest: &Point,
        depart: Stime,
        day: DayOfWeek,
        mut round_best: Option<&mut Vec<RoundBest>>,
    ) -> Journey {
        // Deferred span: only sample the clock when a trace is live, so
        // the untraced hot path stays a thread-local read.
        let t_span = staq_obs::trace::is_active().then(std::time::Instant::now);
        let rounds = self.net.cfg.max_boardings;
        let prune = self.pruning;
        let mut rounds_run = 0u64;
        let mut patterns_scanned = 0u64;
        let mut patterns_pruned = 0u64;
        let mut patterns_day_skipped = 0u64;
        let mut rounds_cut = 0u64;

        let mut s = self.scratch.borrow_mut();
        let Scratch {
            tau_star,
            tau_prev,
            labels,
            marked,
            ride_marked,
            stop_marked,
            queue_pos,
            queue_gen,
            queue_round,
            queue_patterns,
            egress_walk,
            egress_gen,
            egress_round,
            walk,
            walk_nodes,
            access_tmp,
            cache,
        } = &mut *s;

        // A cut query can leave its last round's marks unconsumed.
        for &st in marked.iter() {
            stop_marked[st.idx()] = false;
        }
        marked.clear();
        tau_star.fill(INF);
        labels[0].fill(Label::None);

        // Both isochrones up front: the egress set drives the pruning
        // bound through every round. `begin_query` guarantees neither
        // lookup evicts the other's range.
        cache.begin_query();
        let egress = cache.lookup(self.net, dest, walk, walk_nodes, access_tmp);
        let origin_acc = cache.lookup(self.net, origin, walk, walk_nodes, access_tmp);

        *egress_round = egress_round.wrapping_add(1);
        if *egress_round == 0 {
            egress_gen.fill(0);
            *egress_round = 1;
        }
        // `min_eg` is a lower bound on what any journey still owes after
        // its last alighting: every total is some arrival plus an egress
        // walk of at least this much. Pruning on `arrival + min_eg` is
        // therefore still exact and strictly tighter than `arrival` alone.
        // An empty egress set leaves it saturating — no transit journey can
        // complete, so with pruning on everything collapses to the walk
        // fallback (which the reference also returns).
        let mut min_eg = INF;
        for &(st, w) in cache.slice(egress) {
            egress_walk[st.idx()] = w;
            egress_gen[st.idx()] = *egress_round;
            min_eg = min_eg.min(w);
        }

        // Upper bound on any total arrival worth recording, seeded by the
        // walk-only fallback. Invariant: never below the optimal total, so
        // pruning arrivals whose completion must be strictly later is
        // exact (ties are kept — that is what makes the *journeys*, not
        // just the arrival times, identical to the reference).
        let direct = depart.0.saturating_add(self.net.direct_walk_secs(origin, dest));
        let mut bound = direct;

        // Whether pruning suppressed any would-be improvement or marked
        // stop in the round just processed; decides whether an empty
        // `marked` at the next round means "cut by the bound" (counted in
        // `raptor.rounds_cut`) or natural exhaustion.
        let mut suppressed_prev = false;

        for &(st, w) in cache.slice(origin_acc) {
            let t = depart.0.saturating_add(w);
            let idx = st.idx();
            if t < tau_star[idx] {
                if prune && t.saturating_add(min_eg) > bound {
                    suppressed_prev = true;
                    continue;
                }
                tau_star[idx] = t;
                labels[0][idx] = Label::Access { walk_secs: w };
                if !stop_marked[idx] {
                    stop_marked[idx] = true;
                    marked.push(st);
                }
                if egress_gen[idx] == *egress_round {
                    bound = bound.min(t.saturating_add(egress_walk[idx]));
                }
            }
        }
        if let Some(rb) = round_best.as_deref_mut() {
            record_round_best(rb, 0, cache.slice(egress), tau_star);
        }

        // Last round whose labels row is valid; reconstruction starts here.
        let mut final_k = 0usize;
        #[allow(clippy::needless_range_loop)] // k is the round number, not just an index
        for k in 1..=rounds {
            if marked.is_empty() {
                if suppressed_prev {
                    rounds_cut += (rounds - k + 1) as u64;
                }
                break;
            }
            suppressed_prev = false;

            // Queue: each pattern touched by a surviving marked stop, with
            // the earliest marked position along it.
            *queue_round = queue_round.wrapping_add(1);
            if *queue_round == 0 {
                queue_gen.fill(0);
                *queue_round = 1;
            }
            queue_patterns.clear();
            let mut dropped_any = false;
            for &st in marked.iter() {
                let idx = st.idx();
                stop_marked[idx] = false;
                if prune && tau_star[idx].saturating_add(min_eg) > bound {
                    // Boarding here departs no earlier than an arrival
                    // that — after paying the cheapest possible egress —
                    // already trails the bound: nothing downstream can beat
                    // or tie the best journey.
                    patterns_pruned += self.net.patterns_at(st).len() as u64;
                    dropped_any = true;
                    suppressed_prev = true;
                    continue;
                }
                for &(p, pos) in self.net.patterns_at(st) {
                    let pi = p as usize;
                    if prune && !self.net.patterns()[pi].runs_on(day) {
                        // No trip of this pattern runs on the query day:
                        // `earliest_trip` would reject every candidate, so
                        // scanning it is a provable no-op.
                        patterns_day_skipped += 1;
                        continue;
                    }
                    if prune && pos as usize + 1 >= self.net.patterns()[pi].stops.len() {
                        // Boarding at a pattern's last stop can't alight
                        // anywhere: the scan would be a provable no-op.
                        patterns_pruned += 1;
                        continue;
                    }
                    if queue_gen[pi] == *queue_round {
                        queue_pos[pi] = queue_pos[pi].min(pos);
                    } else {
                        queue_gen[pi] = *queue_round;
                        queue_pos[pi] = pos;
                        queue_patterns.push(p);
                    }
                }
            }
            marked.clear();
            if queue_patterns.is_empty() {
                if dropped_any {
                    rounds_cut += (rounds - k + 1) as u64;
                }
                break;
            }

            rounds_run += 1;
            final_k = k;
            tau_prev.copy_from_slice(tau_star);
            labels[k].fill(Label::None);
            queue_patterns.sort_unstable(); // deterministic scan order
            patterns_scanned += queue_patterns.len() as u64;

            for &pi in queue_patterns.iter() {
                let start_pos = queue_pos[pi as usize];
                let pattern = &self.net.patterns()[pi as usize];
                let mut active: Option<(usize, usize)> = None; // (trip_idx, board_pos)
                for i in start_pos as usize..pattern.stops.len() {
                    let stop = pattern.stops[i];
                    let idx = stop.idx();
                    if let Some((t, b)) = active {
                        let at = pattern.arrival(t, i).0;
                        if at < tau_star[idx] {
                            if prune && at.saturating_add(min_eg) > bound {
                                suppressed_prev = true;
                            } else {
                                tau_star[idx] = at;
                                labels[k][idx] = Label::Ride {
                                    pattern: pi,
                                    trip_idx: t as u32,
                                    board_pos: b as u32,
                                    alight_pos: i as u32,
                                };
                                if !stop_marked[idx] {
                                    stop_marked[idx] = true;
                                    marked.push(stop);
                                }
                                if egress_gen[idx] == *egress_round {
                                    bound = bound.min(at.saturating_add(egress_walk[idx]));
                                }
                            }
                        }
                    }
                    // Board (or re-board an earlier trip) using the previous
                    // round's arrival at this stop.
                    let ready = tau_prev[idx];
                    if ready < INF {
                        match active {
                            None => {
                                // First boarding along the scan: one binary
                                // search over the position's sorted
                                // departure column.
                                if let Some(t2) = pattern.earliest_trip(i, Stime(ready), day) {
                                    active = Some((t2, i));
                                }
                            }
                            Some((t, _)) => {
                                // Flattened-layout cursor: instead of
                                // re-running the binary search, walk the
                                // contiguous departure column down from the
                                // active trip to the earliest one still
                                // catchable, then forward past trips not
                                // running today. The active trip index only
                                // ever decreases along a scan, so the
                                // walk-down is amortized O(n_trips) per
                                // pattern — and the result is exactly
                                // `earliest_trip`'s answer whenever that
                                // answer is an earlier trip (the only case
                                // the old code acted on).
                                let col = pattern.departures_at(i);
                                let mut t2 = t;
                                while t2 > 0 && col[t2 - 1].0 >= ready {
                                    t2 -= 1;
                                }
                                while t2 < t && !pattern.trip_runs_on(t2, day) {
                                    t2 += 1;
                                }
                                if t2 < t {
                                    active = Some((t2, i));
                                }
                            }
                        }
                    }
                }
            }

            // Foot transfers from stops improved by riding this round.
            // Sorted so relaxation order — which chained foot transfers
            // within one round are sensitive to — depends only on *which*
            // stops improved, never on the order pattern scans marked
            // them. The pruned and reference routers mark the same
            // chain-relevant stops in different sequences; without the
            // sort their foot phases could interleave differently.
            ride_marked.clear();
            ride_marked.extend_from_slice(marked);
            ride_marked.sort_unstable();
            for &st in ride_marked.iter() {
                let base = tau_star[st.idx()];
                for tr in self.net.transfers_from(st) {
                    let t = base.saturating_add(tr.walk_secs);
                    let idx = tr.to.idx();
                    if t < tau_star[idx] {
                        if prune && t.saturating_add(min_eg) > bound {
                            suppressed_prev = true;
                            continue;
                        }
                        tau_star[idx] = t;
                        labels[k][idx] = Label::Foot { from: st, walk_secs: tr.walk_secs };
                        if !stop_marked[idx] {
                            stop_marked[idx] = true;
                            marked.push(tr.to);
                        }
                        if egress_gen[idx] == *egress_round {
                            bound = bound.min(t.saturating_add(egress_walk[idx]));
                        }
                    }
                }
            }
            if let Some(rb) = round_best.as_deref_mut() {
                record_round_best(rb, k, cache.slice(egress), tau_star);
            }
        }

        // Egress: best total over the walkable stops around the destination.
        let mut best: Option<(u32, StopId, u32)> = None; // (total, stop, egress_walk)
        for &(st, w) in cache.slice(egress) {
            let at = tau_star[st.idx()];
            if at == INF {
                continue;
            }
            let total = at.saturating_add(w);
            if best.is_none_or(|(bt, _, _)| total < bt) {
                best = Some((total, st, w));
            }
        }

        // One batched registry update per query: eight labeling workers
        // bumping shared counters per round/pattern would contend on the
        // counters' cache lines inside the inner loop.
        QUERIES.inc();
        ROUNDS.add(rounds_run);
        PATTERNS_SCANNED.add(patterns_scanned);
        PATTERNS_PRUNED.add(patterns_pruned);
        PATTERNS_DAY_SKIPPED.add(patterns_day_skipped);
        ROUNDS_CUT.add(rounds_cut);
        if let Some(t0) = t_span {
            let mut span = staq_obs::trace::span_at("raptor.query", t0);
            span.attr("rounds", rounds_run);
            span.attr("patterns_scanned", patterns_scanned);
        }
        match best {
            Some((total, stop, egress_w)) if total < direct => {
                self.reconstruct(&labels[..=final_k], depart, stop, egress_w, Stime(total))
            }
            _ => Journey::walk_only(depart, direct - depart.0),
        }
    }

    /// Earliest arrival time only (no journey construction) — used by tests
    /// to cross-check against the Dijkstra baseline cheaply.
    pub fn earliest_arrival(
        &self,
        origin: &Point,
        dest: &Point,
        depart: Stime,
        day: DayOfWeek,
    ) -> Stime {
        self.query(origin, dest, depart, day).arrive
    }

    /// The Pareto frontier over **(arrival time, transfers)**: every
    /// returned journey is undominated — no other journey arrives no later
    /// with no more transfers — and together they cover every trade-off the
    /// network offers up to `cfg.max_boardings` rides.
    ///
    /// RAPTOR's rounds *are* the second criterion: the best total at the
    /// end of round `k` is the earliest arrival with at most `k` boardings,
    /// so recording each improving round and reconstructing its journey
    /// yields one frontier candidate per ride count; a [`Bag`] then keeps
    /// the undominated ones (by the journeys' actual transfer counts — a
    /// round-`k` candidate may reconstruct with fewer rides). The walk-only
    /// fallback competes as the zero-transfer candidate. Pruning stays
    /// exact for the whole frontier, not just the best total: the bound
    /// never undercuts the optimal ≤`k`-boardings total while round `k`
    /// runs, so every label on an optimal ≤`k` chain survives.
    ///
    /// Sorted by increasing transfers (hence decreasing arrival).
    pub fn query_pareto(
        &self,
        origin: &Point,
        dest: &Point,
        depart: Stime,
        day: DayOfWeek,
    ) -> Vec<Journey> {
        let mut rounds_best: Vec<RoundBest> = Vec::new();
        let _ = self.query_inner(origin, dest, depart, day, Some(&mut rounds_best));

        let mut candidates: Vec<Journey> = Vec::new();
        {
            // The labels rows survive `query_inner` untouched; reconstruct
            // each improving round's journey from its prefix of rounds.
            let s = self.scratch.borrow();
            for rb in &rounds_best {
                candidates.push(self.reconstruct(
                    &s.labels[..=rb.round],
                    depart,
                    rb.stop,
                    rb.egress_walk,
                    Stime(rb.total),
                ));
            }
        }
        candidates.push(Journey::walk_only(depart, self.net.direct_walk_secs(origin, dest)));

        let mut bag = Bag::new();
        for j in &candidates {
            bag.insert(ParetoLabel {
                arrival: j.arrive,
                transfers: j.n_transfers().min(u8::MAX as usize) as u8,
            });
        }
        let mut frontier: Vec<Journey> = Vec::new();
        for j in candidates {
            let l = ParetoLabel {
                arrival: j.arrive,
                transfers: j.n_transfers().min(u8::MAX as usize) as u8,
            };
            if bag.contains(&l)
                && !frontier
                    .iter()
                    .any(|f| f.arrive == j.arrive && f.n_transfers() == j.n_transfers())
            {
                frontier.push(j);
            }
        }
        frontier.sort_by_key(|j| (j.n_transfers(), j.arrive));
        frontier
    }

    /// Earliest-arriving journey using at most `max_transfers` transfers
    /// (i.e. at most `max_transfers + 1` rides) — "fastest with ≤1
    /// transfer". Falls back to walking when no such transit journey
    /// exists. Transfer depth is naturally capped by `cfg.max_boardings`.
    pub fn query_max_transfers(
        &self,
        origin: &Point,
        dest: &Point,
        depart: Stime,
        day: DayOfWeek,
        max_transfers: u8,
    ) -> Journey {
        self.query_pareto(origin, dest, depart, day)
            .into_iter()
            .filter(|j| j.n_transfers() <= max_transfers as usize)
            .min_by_key(|j| j.arrive)
            .unwrap_or_else(|| Journey::walk_only(depart, self.net.direct_walk_secs(origin, dest)))
    }

    /// Rebuilds legs by walking labels backwards from the egress stop.
    fn reconstruct(
        &self,
        labels: &[Vec<Label>],
        depart: Stime,
        egress_stop: StopId,
        egress_walk: u32,
        arrive: Stime,
    ) -> Journey {
        let mut rev: Vec<Leg> = Vec::new();
        if egress_walk > 0 {
            rev.push(Leg::Walk { secs: egress_walk, to_stop: None });
        }
        let mut k = labels.len() - 1;
        let mut stop = egress_stop;
        loop {
            // Find the round that actually set this stop's current value.
            while labels[k][stop.idx()] == Label::None {
                debug_assert!(k > 0, "unlabeled stop {stop:?} reached during reconstruction");
                k -= 1;
            }
            match labels[k][stop.idx()] {
                Label::None => unreachable!(),
                Label::Access { walk_secs } => {
                    rev.push(Leg::Walk { secs: walk_secs, to_stop: Some(stop) });
                    break;
                }
                Label::Foot { from, walk_secs } => {
                    rev.push(Leg::Walk { secs: walk_secs, to_stop: Some(stop) });
                    stop = from;
                }
                Label::Ride { pattern, trip_idx, board_pos, alight_pos } => {
                    let p = &self.net.patterns()[pattern as usize];
                    let board_stop = p.stops[board_pos as usize];
                    let board = p.departure(trip_idx as usize, board_pos as usize);
                    let alight = p.arrival(trip_idx as usize, alight_pos as usize);
                    rev.push(Leg::Ride {
                        trip: p.trips[trip_idx as usize],
                        route: p.route,
                        from_stop: board_stop,
                        to_stop: stop,
                        board,
                        alight,
                    });
                    stop = board_stop;
                    k -= 1;
                }
            }
        }
        rev.reverse();

        // Forward pass: derive waits from the chain's own clock. They
        // cannot come from the arrival table: chained foot transfers may
        // overwrite a parent label after a successor's value was derived
        // from the parent's older (slower) value, so the label chain can
        // reach a boarding stop strictly earlier than the table recorded —
        // the slack is real waiting time, and the chain end (never later
        // than the table-derived bound) is the journey's true arrival.
        let mut legs: Vec<Leg> = Vec::with_capacity(rev.len() + 1);
        let mut t = depart;
        for leg in rev {
            match leg {
                Leg::Walk { secs, .. } => {
                    t = t.plus(secs);
                    legs.push(leg);
                }
                Leg::Wait { .. } => unreachable!("waits are derived in the forward pass"),
                Leg::Ride { board, alight, from_stop, .. } => {
                    debug_assert!(
                        t.0 <= board.0,
                        "chain reaches {from_stop:?} at {t:?}, after boarding at {board:?}"
                    );
                    let wait = board.0.saturating_sub(t.0);
                    if wait > 0 {
                        legs.push(Leg::Wait { secs: wait, at_stop: from_stop });
                    }
                    t = alight;
                    legs.push(leg);
                }
            }
        }
        debug_assert!(t.0 <= arrive.0, "chain arrival {t:?} exceeds arr bound {arrive:?}");
        let j = Journey { depart, arrive: t, legs };
        debug_assert!(j.check_consistency().is_ok(), "{:?}", j.check_consistency());
        j
    }
}

/// Best completed journey over the egress set as of now, appended to `out`
/// when it strictly improves on the last recorded round (the frontier only
/// cares about rounds that buy an earlier arrival). Tie-break matches the
/// final egress scan: first stop in slice order with a strictly smaller
/// total wins.
fn record_round_best(
    out: &mut Vec<RoundBest>,
    round: usize,
    egress: &[(StopId, u32)],
    tau_star: &[u32],
) {
    let mut best: Option<(u32, StopId, u32)> = None;
    for &(st, w) in egress {
        let at = tau_star[st.idx()];
        if at == INF {
            continue;
        }
        let total = at.saturating_add(w);
        if best.is_none_or(|(bt, _, _)| total < bt) {
            best = Some((total, st, w));
        }
    }
    if let Some((total, stop, egress_walk)) = best {
        if out.last().is_none_or(|p| total < p.total) {
            out.push(RoundBest { round, total, stop, egress_walk });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AccessCost;
    use crate::network::RouterConfig;
    use staq_synth::{City, CityConfig};

    fn city() -> City {
        City::generate(&CityConfig::small(42))
    }

    fn queries(city: &City, n: usize) -> Vec<(Point, Point)> {
        // Deterministic OD pairs spread across zones.
        (0..n)
            .map(|i| {
                let o = city.zones[(i * 7) % city.zones.len()].centroid;
                let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
                (o, d)
            })
            .collect()
    }

    #[test]
    fn journeys_are_consistent_and_finite() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let depart = Stime::hms(7, 30, 0);
        for (o, d) in queries(&city, 40) {
            let j = router.query(&o, &d, depart, DayOfWeek::Tuesday);
            j.check_consistency().unwrap();
            assert!(j.arrive >= depart);
            assert!(j.jt_secs() < 4 * 3600, "city crossing under 4h, got {}s", j.jt_secs());
        }
    }

    #[test]
    fn some_journeys_use_transit() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let mut rides = 0;
        let mut walks = 0;
        for (o, d) in queries(&city, 40) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
            if j.is_walk_only() {
                walks += 1;
            } else {
                rides += 1;
            }
        }
        assert!(rides > 0, "no transit journeys found at all");
        assert!(walks > 0, "short trips should prefer walking");
    }

    #[test]
    fn transit_never_loses_to_walking_badly() {
        // The router picks transit only when it beats the walk fallback.
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 30) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
            let walk = net.direct_walk_secs(&o, &d);
            assert!(j.jt_secs() <= walk, "journey {} worse than walking {walk}", j.jt_secs());
        }
    }

    #[test]
    fn sunday_has_no_service_so_everything_walks() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 10) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Sunday);
            assert!(j.is_walk_only());
        }
    }

    #[test]
    fn later_departure_never_arrives_earlier() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 15) {
            let j1 = router.query(&o, &d, Stime::hms(7, 0, 0), DayOfWeek::Tuesday);
            let j2 = router.query(&o, &d, Stime::hms(7, 20, 0), DayOfWeek::Tuesday);
            assert!(
                j2.arrive >= j1.arrive.minus(1),
                "FIFO violated: {:?} vs {:?}",
                j1.arrive,
                j2.arrive
            );
        }
    }

    #[test]
    fn zero_boardings_config_walks_everywhere() {
        let city = city();
        let cfg = RouterConfig { max_boardings: 0, ..RouterConfig::default() };
        let net = TransitNetwork::new(&city.road, &city.feed, cfg);
        let router = Raptor::new(&net);
        let (o, d) = queries(&city, 1)[0];
        let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
        assert!(j.is_walk_only());
    }

    #[test]
    fn gac_cost_computable_for_all_journeys() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let gac = AccessCost::gac();
        let jt = AccessCost::jt();
        for (o, d) in queries(&city, 20) {
            let j = router.query(&o, &d, Stime::hms(8, 0, 0), DayOfWeek::Tuesday);
            let g = gac.cost(&j);
            let t = jt.cost(&j);
            assert!(g.is_finite() && g >= 0.0);
            assert!(g >= t * 0.99, "GAC {g} below JT {t}");
        }
    }

    /// The reference router is the same machine with pruning off; smoke
    /// check it still routes (full equivalence lives in
    /// `tests/prune_equivalence.rs`).
    #[test]
    fn reference_router_routes() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::reference(&net);
        let (o, d) = queries(&city, 5)[4];
        let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
        j.check_consistency().unwrap();
    }
}

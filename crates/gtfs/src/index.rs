//! `FeedIndex`: the query views the rest of the system uses.
//!
//! The paper consumes GTFS through two operations (§IV-A):
//!
//! * `F_stops ∩ W_i` — which stops fall in a walking isochrone. The index
//!   exposes stop positions as `(Point, u32)` pairs ready for a spatial
//!   index; the intersection itself happens in `staq-road`/`staq-hoptree`.
//! * `F_trips` — "for each bus stop, all the services that pass through it
//!   during `v_i`", and for each such service the subsequent (or preceding)
//!   stops. [`FeedIndex::departures_at`] and [`FeedIndex::trip_calls`]
//!   provide exactly these.

use crate::delta::{Delta, DeltaOutcome};
use crate::model::{
    Feed, Route, RouteId, RouteType, Service, ServiceId, Stop, StopId, StopTime, Trip, TripId,
};
use crate::time::{DayOfWeek, Stime, TimeInterval};
use staq_geom::Point;

/// A departure event at a stop: `trip` leaves at `departure`, being call
/// number `seq` of that trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Departure {
    pub trip: TripId,
    pub departure: Stime,
    pub seq: u32,
}

/// Precomputed inverted indexes over a [`Feed`].
///
/// Construction is O(|stop_times| log |stop_times|); all queries afterwards
/// are binary searches plus slice scans.
///
/// The index is also *incrementally mutable*: [`FeedIndex::apply_delta`]
/// applies a streaming schedule [`Delta`] by patching only the touched
/// ranges and departure rows — never a full rebuild — and is exact:
/// equality (`PartialEq`) with `FeedIndex::build` over the equivalently
/// mutated feed is test-gated.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedIndex {
    feed: Feed,
    /// Per-trip ranges into `feed.stop_times` (which is `(trip, seq)`-sorted).
    trip_ranges: Vec<(u32, u32)>,
    /// Departures at each stop, sorted by time.
    stop_departures: Vec<Vec<Departure>>,
    /// Route of each trip (dense copy for cache-friendly lookups).
    trip_route: Vec<RouteId>,
    /// Service of each trip.
    trip_service: Vec<ServiceId>,
}

impl FeedIndex {
    /// Builds the index, taking ownership of the feed. The feed must be
    /// normalized (sorted stop_times); [`crate::parse`] and `staq-synth`
    /// both guarantee this, and it is re-checked here.
    pub fn build(mut feed: Feed) -> Self {
        if !feed.is_normalized() {
            feed.normalize();
        }
        let n_trips = feed.trips.len();
        let mut trip_ranges = vec![(0u32, 0u32); n_trips];
        let mut i = 0usize;
        while i < feed.stop_times.len() {
            let trip = feed.stop_times[i].trip;
            let start = i;
            while i < feed.stop_times.len() && feed.stop_times[i].trip == trip {
                i += 1;
            }
            trip_ranges[trip.idx()] = (start as u32, i as u32);
        }

        let mut stop_departures: Vec<Vec<Departure>> = vec![Vec::new(); feed.stops.len()];
        for st in &feed.stop_times {
            stop_departures[st.stop.idx()].push(Departure {
                trip: st.trip,
                departure: st.departure,
                seq: st.seq,
            });
        }
        for deps in &mut stop_departures {
            // Total order: the `(trip, seq)` tie-break matches the stable
            // sort over canonical stop_time order this used to be, and makes
            // incremental departure edits land at the same slot a rebuild
            // would.
            deps.sort_by_key(|d| (d.departure, d.trip, d.seq));
        }

        let trip_route = feed.trips.iter().map(|t| t.route).collect();
        let trip_service = feed.trips.iter().map(|t| t.service).collect();
        FeedIndex { feed, trip_ranges, stop_departures, trip_route, trip_service }
    }

    /// The underlying feed.
    #[inline]
    pub fn feed(&self) -> &Feed {
        &self.feed
    }

    /// Number of stops.
    #[inline]
    pub fn n_stops(&self) -> usize {
        self.feed.stops.len()
    }

    /// Position of a stop.
    #[inline]
    pub fn stop_pos(&self, s: StopId) -> Point {
        self.feed.stops[s.idx()].pos
    }

    /// `(position, raw stop id)` pairs for building spatial indexes.
    pub fn stop_points(&self) -> Vec<(Point, u32)> {
        self.feed.stops.iter().map(|s| (s.pos, s.id.0)).collect()
    }

    /// The ordered calls of `trip` (slice into the canonical stop_times).
    #[inline]
    pub fn trip_calls(&self, trip: TripId) -> &[StopTime] {
        let (a, b) = self.trip_ranges[trip.idx()];
        &self.feed.stop_times[a as usize..b as usize]
    }

    /// Route operated by `trip`.
    #[inline]
    pub fn trip_route(&self, trip: TripId) -> RouteId {
        self.trip_route[trip.idx()]
    }

    /// True when `trip` operates on `day`.
    #[inline]
    pub fn trip_runs_on(&self, trip: TripId, day: DayOfWeek) -> bool {
        self.feed.services[self.trip_service[trip.idx()].idx()].runs_on(day)
    }

    /// All departures from `stop` (any day), sorted by time.
    #[inline]
    pub fn all_departures_at(&self, stop: StopId) -> &[Departure] {
        &self.stop_departures[stop.idx()]
    }

    /// Departures from `stop` within the interval `v`, filtered to services
    /// operating on `v.day` — the paper's `F_trips` retrieval.
    pub fn departures_at<'a>(
        &'a self,
        stop: StopId,
        v: &'a TimeInterval,
    ) -> impl Iterator<Item = Departure> + 'a {
        let deps = &self.stop_departures[stop.idx()];
        let lo = deps.partition_point(|d| d.departure < v.start);
        deps[lo..]
            .iter()
            .take_while(move |d| d.departure < v.end)
            .filter(move |d| self.trip_runs_on(d.trip, v.day))
            .copied()
    }

    /// First departure from `stop` of `trip_filtered` kind at or after `t`
    /// on `day` — the router's "next vehicle" primitive.
    pub fn next_departure(&self, stop: StopId, t: Stime, day: DayOfWeek) -> Option<Departure> {
        let deps = &self.stop_departures[stop.idx()];
        let lo = deps.partition_point(|d| d.departure < t);
        deps[lo..].iter().find(|d| self.trip_runs_on(d.trip, day)).copied()
    }

    /// Mean scheduled headway (seconds between consecutive departures) at
    /// `stop` within `v`; `None` with fewer than two departures.
    pub fn mean_headway(&self, stop: StopId, v: &TimeInterval) -> Option<f64> {
        let times: Vec<Stime> = self.departures_at(stop, v).map(|d| d.departure).collect();
        if times.len() < 2 {
            return None;
        }
        let total: u32 = times.windows(2).map(|w| w[0].until(w[1])).sum();
        Some(total as f64 / (times.len() - 1) as f64)
    }

    // ------------------------------------------------------------------
    // Incremental mutation: the live-delta path. Every method patches the
    // feed *and* the inverted indexes in place; equality with a
    // from-scratch `build` over the mutated feed is the test-gated
    // contract.
    // ------------------------------------------------------------------

    /// Applies one streaming [`Delta`] incrementally. Returns what was
    /// touched so callers can invalidate precisely; `Err` on unknown ids or
    /// invalid route geometry (the index is unchanged on error).
    ///
    /// `bus_speed_mps` parameterizes the run times of [`Delta::AddRoute`]
    /// (the city's bus speed; unused by the other kinds).
    pub fn apply_delta(
        &mut self,
        delta: &Delta,
        bus_speed_mps: f64,
    ) -> Result<DeltaOutcome, String> {
        let touched_stops = match delta {
            Delta::TripDelay { trip, delay_secs } => self.delay_trip(*trip, *delay_secs)?,
            Delta::TripCancel { trip } => self.cancel_trip(*trip)?,
            Delta::RouteRemove { route } => self.remove_route(*route)?,
            Delta::ServiceAlert { .. } => {
                return Ok(DeltaOutcome { touched_stops: Vec::new(), structural: false })
            }
            Delta::AddRoute { stops, headway_s } => {
                self.append_route(stops, *headway_s, bus_speed_mps)?
            }
        };
        Ok(DeltaOutcome { touched_stops, structural: true })
    }

    /// Shifts every call of `trip` `delay_secs` later (uniform holding
    /// delay). Returns the positions of the touched stops.
    pub fn delay_trip(&mut self, trip: TripId, delay_secs: u32) -> Result<Vec<Point>, String> {
        let (a, b) =
            *self.trip_ranges.get(trip.idx()).ok_or_else(|| format!("unknown trip #{}", trip.0))?;
        if a == b {
            return Err(format!("trip #{} has no calls to delay", trip.0));
        }
        let mut touched = Vec::with_capacity((b - a) as usize);
        for i in a as usize..b as usize {
            let st = self.feed.stop_times[i];
            // Re-slot the departure in its stop's sorted row: remove the old
            // event, insert the shifted one at its total-order position.
            let row = &mut self.stop_departures[st.stop.idx()];
            let pos = row
                .iter()
                .position(|d| d.trip == trip && d.seq == st.seq)
                .expect("departure rows track the feed");
            row.remove(pos);
            let nd = Departure { trip, departure: st.departure.plus(delay_secs), seq: st.seq };
            let at = row.partition_point(|d| {
                (d.departure, d.trip, d.seq) < (nd.departure, nd.trip, nd.seq)
            });
            row.insert(at, nd);
            let stm = &mut self.feed.stop_times[i];
            stm.arrival = stm.arrival.plus(delay_secs);
            stm.departure = stm.departure.plus(delay_secs);
            touched.push(self.feed.stops[st.stop.idx()].pos);
        }
        Ok(touched)
    }

    /// Cancels `trip`: its calls are removed from the feed and every
    /// departure row. A trip that already makes no calls is a no-op (so
    /// replaying a delta log is idempotent per entry). The trip record
    /// itself remains — dense ids stay stable.
    pub fn cancel_trip(&mut self, trip: TripId) -> Result<Vec<Point>, String> {
        let (a, b) =
            *self.trip_ranges.get(trip.idx()).ok_or_else(|| format!("unknown trip #{}", trip.0))?;
        if a == b {
            return Ok(Vec::new());
        }
        let mut touched = Vec::with_capacity((b - a) as usize);
        for i in a as usize..b as usize {
            let st = self.feed.stop_times[i];
            let row = &mut self.stop_departures[st.stop.idx()];
            let pos = row
                .iter()
                .position(|d| d.trip == trip && d.seq == st.seq)
                .expect("departure rows track the feed");
            row.remove(pos);
            touched.push(self.feed.stops[st.stop.idx()].pos);
        }
        self.feed.stop_times.drain(a as usize..b as usize);
        let removed = b - a;
        self.trip_ranges[trip.idx()] = (0, 0);
        for r in &mut self.trip_ranges {
            if r.0 >= b {
                r.0 -= removed;
                r.1 -= removed;
            }
        }
        Ok(touched)
    }

    /// Cancels every trip of `route`. The route (and its trips/services)
    /// stay as records; only calls disappear.
    pub fn remove_route(&mut self, route: RouteId) -> Result<Vec<Point>, String> {
        if route.idx() >= self.feed.routes.len() {
            return Err(format!("unknown route #{}", route.0));
        }
        let trips: Vec<TripId> =
            self.feed.trips.iter().filter(|t| t.route == route).map(|t| t.id).collect();
        let mut touched = Vec::new();
        for t in trips {
            touched.extend(self.cancel_trip(t)?);
        }
        Ok(touched)
    }

    /// Appends a new weekday bus route calling at `stops_at` in order with
    /// the given peak headway, extending the index incrementally: new trips
    /// get fresh (maximal) ids, so their stop_times append in canonical
    /// order and no existing departure row is touched.
    pub fn append_route(
        &mut self,
        stops_at: &[Point],
        peak_headway_s: u32,
        bus_speed_mps: f64,
    ) -> Result<Vec<Point>, String> {
        if stops_at.iter().any(|p| !p.is_finite()) {
            return Err("route stops must be finite".into());
        }
        // Validate geometry (stop count, zero-length hops) before touching
        // the feed, so a rejected route leaves the index unchanged.
        let tt = crate::delta::dyn_route_timetable(stops_at, peak_headway_s, bus_speed_mps)?;
        let feed = &mut self.feed;
        let first_new_stop = feed.stops.len();
        let first_new_trip = feed.trips.len();
        let first_new_st = feed.stop_times.len();

        // New stops at the given points.
        let mut new_stops: Vec<StopId> = Vec::with_capacity(stops_at.len());
        for (k, p) in stops_at.iter().enumerate() {
            let id = StopId(feed.stops.len() as u32);
            feed.stops.push(Stop {
                id,
                gtfs_id: format!("DYN_S{}_{}", feed.routes.len(), k),
                name: format!("Dynamic stop {k}"),
                pos: *p,
            });
            new_stops.push(id);
        }

        // Weekday service dedicated to dynamic routes.
        let svc = ServiceId(feed.services.len() as u32);
        feed.services.push(Service {
            id: svc,
            gtfs_id: format!("DYN_WK{}", svc.0),
            days: [true, true, true, true, true, false, false],
        });
        let route = RouteId(feed.routes.len() as u32);
        feed.routes.push(Route {
            id: route,
            gtfs_id: format!("DYN_R{}", route.0),
            agency: feed.agencies[0].id,
            short_name: format!("D{}", route.0),
            route_type: RouteType::Bus,
        });

        // All-day service at the peak headway (scenario routes are
        // what-ifs; a flat headway keeps the experiment interpretable).
        // The schedule convention lives in `dyn_route_timetable` so the
        // what-if overlay produces bit-identical trips.
        for dir in 0..2usize {
            let ordered: Vec<StopId> = if dir == 0 {
                new_stops.clone()
            } else {
                new_stops.iter().rev().copied().collect()
            };
            for (k, &start) in tt.starts.iter().enumerate() {
                let trip = TripId(feed.trips.len() as u32);
                feed.trips.push(Trip {
                    id: trip,
                    gtfs_id: format!("DYN_T{}_{dir}_{k}", route.0),
                    route,
                    service: svc,
                });
                for (i, &stop) in ordered.iter().enumerate() {
                    let (arr, dep) = tt.offsets[dir][i];
                    feed.stop_times.push(StopTime {
                        trip,
                        stop,
                        arrival: Stime(start + arr),
                        departure: Stime(start + dep),
                        seq: i as u32,
                    });
                }
            }
        }

        // Incremental index extension. New trips carry maximal ids, so the
        // appended stop_times keep the feed `(trip, seq)`-normalized and
        // their ranges scan off the tail.
        self.trip_route.extend(feed.trips[first_new_trip..].iter().map(|t| t.route));
        self.trip_service.extend(feed.trips[first_new_trip..].iter().map(|t| t.service));
        self.trip_ranges.resize(feed.trips.len(), (0, 0));
        let mut i = first_new_st;
        while i < feed.stop_times.len() {
            let trip = feed.stop_times[i].trip;
            let start = i;
            while i < feed.stop_times.len() && feed.stop_times[i].trip == trip {
                i += 1;
            }
            self.trip_ranges[trip.idx()] = (start as u32, i as u32);
        }
        // New trips call only at new stops: existing departure rows are
        // untouched, the fresh rows sort like a rebuild would.
        self.stop_departures.resize(feed.stops.len(), Vec::new());
        for st in &feed.stop_times[first_new_st..] {
            self.stop_departures[st.stop.idx()].push(Departure {
                trip: st.trip,
                departure: st.departure,
                seq: st.seq,
            });
        }
        for row in &mut self.stop_departures[first_new_stop..] {
            row.sort_by_key(|d| (d.departure, d.trip, d.seq));
        }
        debug_assert!(self.feed.is_normalized());
        Ok(stops_at.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::tests::tiny_feed_text;

    fn index() -> FeedIndex {
        FeedIndex::build(tiny_feed_text().parse().unwrap())
    }

    #[test]
    fn trip_calls_are_ordered() {
        let ix = index();
        let calls = ix.trip_calls(TripId(0));
        assert_eq!(calls.len(), 2);
        assert!(calls[0].seq < calls[1].seq);
        assert_eq!(calls[0].stop, StopId(0));
    }

    #[test]
    fn departures_filtered_by_interval_and_day() {
        let ix = index();
        let am = TimeInterval::am_peak();
        let deps: Vec<_> = ix.departures_at(StopId(0), &am).collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].departure, Stime::hms(7, 0, 30));

        // Sunday: weekday-only service doesn't run.
        let sunday = TimeInterval::new(Stime::hours(7), Stime::hours(9), DayOfWeek::Sunday, "sun");
        assert_eq!(ix.departures_at(StopId(0), &sunday).count(), 0);

        // Window after the departure.
        let late =
            TimeInterval::new(Stime::hours(10), Stime::hours(12), DayOfWeek::Tuesday, "late");
        assert_eq!(ix.departures_at(StopId(0), &late).count(), 0);
    }

    #[test]
    fn next_departure_respects_time_and_day() {
        let ix = index();
        let d = ix.next_departure(StopId(0), Stime::hours(7), DayOfWeek::Tuesday).unwrap();
        assert_eq!(d.departure, Stime::hms(7, 0, 30));
        assert!(ix.next_departure(StopId(0), Stime::hours(8), DayOfWeek::Tuesday).is_none());
        assert!(ix.next_departure(StopId(0), Stime::hours(7), DayOfWeek::Sunday).is_none());
    }

    #[test]
    fn mean_headway_requires_two_departures() {
        let ix = index();
        assert!(ix.mean_headway(StopId(0), &TimeInterval::am_peak()).is_none());
    }

    #[test]
    fn stop_points_expose_all_stops() {
        let ix = index();
        let pts = ix.stop_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1, 0);
    }

    #[test]
    fn builds_from_unnormalized_feed() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times.reverse();
        let ix = FeedIndex::build(feed);
        assert_eq!(ix.trip_calls(TripId(0)).len(), 2);
        assert!(ix.feed().is_normalized());
    }

    /// A richer index for mutation tests: the tiny feed plus an appended
    /// dynamic route (several trips over fresh stops).
    fn mutable_index() -> FeedIndex {
        let mut ix = index();
        ix.append_route(
            &[Point::new(0.0, 0.0), Point::new(900.0, 0.0), Point::new(1800.0, 600.0)],
            1800,
            8.0,
        )
        .unwrap();
        ix
    }

    /// The incremental-mutation contract: after any delta, the index equals
    /// a from-scratch build over its own mutated feed.
    fn assert_matches_rebuild(ix: &FeedIndex) {
        let rebuilt = FeedIndex::build(ix.feed().clone());
        assert_eq!(*ix, rebuilt, "incremental index diverged from rebuild");
    }

    #[test]
    fn append_route_matches_rebuild_and_validates() {
        let base_trips = index().feed().trips.len();
        let ix = mutable_index();
        crate::validate::assert_valid(ix.feed());
        assert_matches_rebuild(&ix);
        // Both directions, 6:00–22:00 at the (clamped) headway.
        let n_new_trips = ix.feed().trips.len() - base_trips;
        assert_eq!(n_new_trips, 2 * 32, "32 departures per direction over 6:00-22:00 at 1800s");
    }

    #[test]
    fn delay_trip_matches_rebuild() {
        let mut ix = mutable_index();
        let trip = TripId(2); // first appended trip
        let before: Vec<Stime> = ix.trip_calls(trip).iter().map(|c| c.departure).collect();
        let touched = ix.delay_trip(trip, 420).unwrap();
        assert_eq!(touched.len(), 3);
        let after: Vec<Stime> = ix.trip_calls(trip).iter().map(|c| c.departure).collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.plus(420), *a);
        }
        assert_matches_rebuild(&ix);
        crate::validate::assert_valid(ix.feed());
    }

    #[test]
    fn cancel_trip_matches_rebuild_and_clears_calls() {
        let mut ix = mutable_index();
        let trip = TripId(3);
        let stop = ix.trip_calls(trip)[0].stop;
        let deps_before = ix.all_departures_at(stop).len();
        let touched = ix.cancel_trip(trip).unwrap();
        assert_eq!(touched.len(), 3);
        assert!(ix.trip_calls(trip).is_empty());
        assert_eq!(ix.all_departures_at(stop).len(), deps_before - 1);
        assert_matches_rebuild(&ix);
        crate::validate::assert_valid(ix.feed());
        // Cancelling again is a structural no-op.
        assert!(ix.cancel_trip(trip).unwrap().is_empty());
        assert_matches_rebuild(&ix);
    }

    #[test]
    fn remove_route_cancels_every_trip_and_matches_rebuild() {
        let mut ix = mutable_index();
        let route = ix.feed().routes.last().unwrap().id;
        ix.remove_route(route).unwrap();
        for t in ix.feed().trips.iter().filter(|t| t.route == route) {
            assert!(ix.trip_calls(t.id).is_empty());
        }
        // The original trips are untouched.
        assert_eq!(ix.trip_calls(TripId(0)).len(), 2);
        assert_matches_rebuild(&ix);
        crate::validate::assert_valid(ix.feed());
    }

    #[test]
    fn apply_delta_dispatches_and_reports_structure() {
        let mut ix = mutable_index();
        let alert = ix
            .apply_delta(&Delta::ServiceAlert { route: RouteId(0), message: "slow".into() }, 8.0)
            .unwrap();
        assert!(!alert.structural);
        assert!(alert.touched_stops.is_empty());
        let out =
            ix.apply_delta(&Delta::TripDelay { trip: TripId(2), delay_secs: 60 }, 8.0).unwrap();
        assert!(out.structural);
        assert!(!out.touched_stops.is_empty());
        assert_matches_rebuild(&ix);
    }

    #[test]
    fn mutations_reject_unknown_ids_and_bad_geometry() {
        let mut ix = index();
        assert!(ix.delay_trip(TripId(99), 60).is_err());
        assert!(ix.cancel_trip(TripId(99)).is_err());
        assert!(ix.remove_route(RouteId(99)).is_err());
        assert!(ix.append_route(&[Point::new(0.0, 0.0)], 600, 8.0).is_err());
        assert!(ix
            .append_route(&[Point::new(0.0, 0.0), Point::new(f64::NAN, 0.0)], 600, 8.0)
            .is_err());
        // Failed mutations leave the index untouched.
        assert_eq!(ix, index());
    }
}

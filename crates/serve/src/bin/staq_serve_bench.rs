//! Open-loop load generator for a staq-serve daemon.
//!
//! ```text
//! staq-serve-bench [--addr 127.0.0.1:7878 | --loopback] [--conns N]
//!                  [--duration secs] [--rate req/s] [--edit-every ms]
//!                  [--workers N] [--seed N] [--emit-json path]
//! ```
//!
//! Phase 1 (cold): with an empty server cache, one connection touches
//! every POI category once — these latencies include the SSR pipeline
//! run. Phase 2 (warm): `--conns` connections issue a rotating query mix
//! for `--duration` seconds; `--rate` (total requests/sec, spread across
//! connections) makes the loop open-loop — senders pace by wall clock
//! and do not slow down when the server does. `--rate 0` means closed
//! loop (send as fast as responses return). `--edit-every N` adds a
//! dedicated connection issuing `add_poi` every N ms, so the cache keeps
//! being invalidated under read load.
//!
//! `--loopback` skips the external daemon: the bench hosts its own
//! server (test-size city, `--seed`-fixed, `--workers` threads) on a
//! free loopback port — self-contained enough for CI. `--emit-json`
//! writes the machine-readable report (`BENCH_serve.json`): client-side
//! throughput plus the server's own [`MetricsSnapshot`] — per-kind
//! latency quantiles as the workers measured them, engine cache
//! hit/miss/invalidation counts, pipeline stage timings.
//!
//! The report prints requests/sec and p50/p95/p99 per request kind,
//! plus the server's pipeline-run counter before and after.
//!
//! [`MetricsSnapshot`]: staq_obs::MetricsSnapshot

use staq_bench::{fmt_dur, LatencyHistogram};
use staq_serve::client::Client;
use staq_serve::presets::CityPreset;
use staq_serve::{ServerConfig, StatsReply};
use staq_synth::PoiCategory;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    conns: usize,
    duration: Duration,
    rate: f64,
    edit_every: Option<Duration>,
    loopback: bool,
    workers: usize,
    seed: u64,
    emit_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        conns: 16,
        duration: Duration::from_secs(10),
        rate: 0.0,
        edit_every: None,
        loopback: false,
        workers: 4,
        seed: 42,
        emit_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--conns" => args.conns = parse(&mut it, "--conns"),
            "--duration" => args.duration = Duration::from_secs_f64(parse(&mut it, "--duration")),
            "--rate" => args.rate = parse(&mut it, "--rate"),
            "--edit-every" => {
                let ms: u64 = parse(&mut it, "--edit-every");
                args.edit_every = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--loopback" => args.loopback = true,
            "--workers" => args.workers = parse(&mut it, "--workers"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.conns == 0 {
        usage("--conns must be at least 1");
    }
    if args.workers == 0 {
        usage("--workers must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: staq-serve-bench [--addr host:port | --loopback] [--conns N] \
         [--duration secs] [--rate req/s] [--edit-every ms] [--workers N] \
         [--seed N] [--emit-json path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Kinds tracked separately in the report, in print order.
const KINDS: [&str; 4] = ["measures", "mean_access", "worst_zones", "at_risk"];

struct WorkerReport {
    hists: Vec<LatencyHistogram>, // indexed like KINDS
    errors: u64,
}

fn main() {
    let mut args = parse_args();
    // Self-hosted mode: a test-size city on a free loopback port, so CI
    // can run the bench without a separately managed daemon.
    let mut loopback_server = args.loopback.then(|| {
        let engine = CityPreset::Test.engine(0.05, args.seed);
        let handle = staq_serve::serve(
            engine,
            &ServerConfig { addr: "127.0.0.1:0".into(), workers: args.workers, queue_depth: 256 },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot start loopback server: {e}");
            std::process::exit(1);
        });
        args.addr = handle.addr().to_string();
        handle
    });
    let mut control = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let stats0 = control.stats().expect("stats");
    println!(
        "server at {}: {} workers, {} pipeline runs so far",
        args.addr, stats0.workers, stats0.pipeline_runs
    );

    // Cold phase: first touch per category pays the SSR pipeline.
    let mut cold = LatencyHistogram::new();
    for cat in PoiCategory::ALL {
        let t = Instant::now();
        control.measures(cat).expect("cold measures");
        cold.record(t.elapsed());
    }
    println!("cold (first touch per category): {}", cold.summary());

    // Warm phase: rotating query mix over `conns` connections.
    let stop = Arc::new(AtomicBool::new(false));
    let per_conn_interval =
        (args.rate > 0.0).then(|| Duration::from_secs_f64(args.conns as f64 / args.rate));
    let t_start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.conns {
        let addr = args.addr.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || run_conn(&addr, c, per_conn_interval, &stop)));
    }
    let editor = args.edit_every.map(|every| {
        let addr = args.addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_editor(&addr, every, &stop))
    });

    std::thread::sleep(args.duration);
    stop.store(true, Ordering::SeqCst);

    let mut hists: Vec<LatencyHistogram> =
        (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect();
    let mut errors = 0u64;
    for h in handles {
        let r = h.join().expect("worker thread panicked");
        for (acc, part) in hists.iter_mut().zip(&r.hists) {
            acc.merge(part);
        }
        errors += r.errors;
    }
    let edit_report = editor.map(|h| h.join().expect("editor thread panicked"));
    let elapsed = t_start.elapsed().as_secs_f64();

    let total: u64 = hists.iter().map(|h| h.count()).sum();
    println!(
        "\nwarm: {} requests over {:.1}s from {} conns -> {:.0} req/s ({} errors)",
        total,
        elapsed,
        args.conns,
        total as f64 / elapsed,
        errors
    );
    for (kind, h) in KINDS.iter().zip(&hists) {
        if h.count() > 0 {
            println!("  {kind:<12} {}", h.summary());
        }
    }
    if let Some((h, errs)) = edit_report {
        println!("  {:<12} {} ({errs} errors)", "add_poi", h.summary());
    }

    let stats1 = control.stats().expect("stats");
    println!(
        "pipeline runs {} -> {} (+{}); requests served {}",
        stats0.pipeline_runs,
        stats1.pipeline_runs,
        stats1.pipeline_runs - stats0.pipeline_runs,
        stats1.requests_served
    );
    println!(
        "warm vs cold p99: {} vs {}",
        fmt_dur(
            hists
                .iter()
                .fold(LatencyHistogram::new(), |mut a, h| {
                    a.merge(h);
                    a
                })
                .percentile(99.0)
        ),
        fmt_dur(cold.percentile(99.0)),
    );

    if let Some(path) = &args.emit_json {
        let json = bench_json(&args, elapsed, total, errors, &stats1);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    drop(control);
    if let Some(mut server) = loopback_server.take() {
        server.shutdown();
    }
}

/// The machine-readable report (`BENCH_serve.json`): client-observed
/// throughput plus the server's own view — per-kind execution latency
/// quantiles from the worker-side histograms, engine cache counters, and
/// the full metrics snapshot for anything else (stage timings, RAPTOR
/// counters). Hand-rolled JSON, like the snapshot's own codec.
fn bench_json(args: &Args, elapsed: f64, total: u64, errors: u64, stats: &StatsReply) -> String {
    let m = &stats.metrics;
    let mut kinds = String::new();
    for (i, kind) in ["measures", "query", "add_poi", "add_bus_route", "stats"].iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        match m.histogram(&format!("serve.request.{kind}")) {
            Some(h) => kinds.push_str(&format!(
                "{{\"kind\":\"{kind}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\
                 \"p99_ns\":{},\"max_ns\":{}}}",
                h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
            )),
            None => kinds.push_str(&format!("{{\"kind\":\"{kind}\",\"count\":0}}")),
        }
    }
    let cache = |name: &str| m.counter(&format!("engine.cache.{name}")).unwrap_or(0);
    format!(
        "{{\"bench\":\"staq-serve-bench\",\"seed\":{},\"workers\":{},\"conns\":{},\
         \"duration_secs\":{:.3},\"total_requests\":{},\"requests_per_sec\":{:.1},\
         \"errors\":{},\"pipeline_runs\":{},\"engine_cache\":{{\"hits\":{},\"misses\":{},\
         \"joins\":{},\"invalidations\":{}}},\"server_kinds\":[{}],\"metrics\":{}}}",
        args.seed,
        stats.workers,
        args.conns,
        elapsed,
        total,
        total as f64 / elapsed,
        errors,
        stats.pipeline_runs,
        cache("hits"),
        cache("misses"),
        cache("joins"),
        cache("invalidations"),
        kinds,
        m.to_json(),
    )
}

fn run_conn(addr: &str, index: usize, pace: Option<Duration>, stop: &AtomicBool) -> WorkerReport {
    use staq_access::AccessQuery;

    let mut report = WorkerReport {
        hists: (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect(),
        errors: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        report.errors += 1;
        return report;
    };
    let mut i = index; // desynchronize the rotation across connections
    let mut next_send = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        if let Some(p) = pace {
            // Open loop: stick to the schedule even if responses lag.
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep(next_send - now);
            }
            next_send += p;
        }
        let cat = PoiCategory::ALL[i % 4];
        let t = Instant::now();
        let (slot, res) = match i % 8 {
            0 => (0, client.measures(cat).map(|_| ())),
            1..=3 => (1, client.query(&AccessQuery::MeanAccess, cat).map(|_| ())),
            4 | 5 => (2, client.query(&AccessQuery::WorstZones { k: 10 }, cat).map(|_| ())),
            _ => (3, client.query(&AccessQuery::AtRisk { threshold_factor: 1.5 }, cat).map(|_| ())),
        };
        let elapsed = t.elapsed();
        match res {
            Ok(()) => report.hists[slot].record(elapsed),
            Err(_) => report.errors += 1,
        }
        i += 1;
    }
    report
}

fn run_editor(addr: &str, every: Duration, stop: &AtomicBool) -> (LatencyHistogram, u64) {
    let mut hist = LatencyHistogram::new();
    let mut errors = 0u64;
    let Ok(mut client) = Client::connect(addr) else { return (hist, 1) };
    // Walk POIs along a diagonal so every edit is a distinct position.
    let mut k = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let pos = staq_geom::Point::new(500.0 + 13.0 * k as f64, 500.0 + 7.0 * k as f64);
        let t = Instant::now();
        match client.add_poi(PoiCategory::ALL[k as usize % 4], pos) {
            Ok(_) => hist.record(t.elapsed()),
            Err(_) => errors += 1,
        }
        k += 1;
        std::thread::sleep(every);
    }
    (hist, errors)
}

//! RAPTOR: round-based earliest-arrival routing over trip patterns.
//!
//! Round `k` computes the earliest arrival at every stop using at most `k`
//! boardings; foot transfers follow each round. Journeys are reconstructed
//! from per-round labels into [`Journey`] legs so the GAC's components
//! (access walk, wait, in-vehicle, egress, transfers) fall out directly.
//!
//! This is the workhorse behind every shortest-path query (SPQ) in the
//! paper: TODAM labeling (§IV-D) calls [`Raptor::query`] once per sampled
//! trip.

use crate::journey::{Journey, Leg};
use crate::network::TransitNetwork;
use staq_geom::Point;
use staq_gtfs::model::StopId;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_obs::Counter;
use staq_road::dijkstra::WalkScratch;
use staq_road::NodeId;
use std::cell::RefCell;
use std::collections::HashMap;

const INF: u32 = u32::MAX;

/// Queries answered across all routers in the process.
static QUERIES: Counter = Counter::new("raptor.queries");
/// RAPTOR rounds that scanned patterns (rounds skipped because no stop was
/// marked don't count — they do no routing work).
static ROUNDS: Counter = Counter::new("raptor.rounds");
/// Pattern scans across all rounds (the inner-loop unit of work).
static PATTERNS_SCANNED: Counter = Counter::new("raptor.patterns_scanned");

/// How a stop's arrival time was achieved in a given round.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Label {
    /// Not improved this round (carried over from the previous round).
    None,
    /// Walked from the origin (round 0 only).
    Access { walk_secs: u32 },
    /// Rode a trip of `pattern` from `board_pos` to `alight_pos`.
    Ride { pattern: u32, trip_idx: u32, board_pos: u32, alight_pos: u32 },
    /// Foot transfer from another stop improved this round.
    Foot { from: StopId, walk_secs: u32 },
}

/// Per-router query state, allocated once in [`Raptor::new`] and cleared —
/// never reallocated — between queries. Labeling runs millions of SPQs per
/// pipeline pass (§IV-E); the previous implementation rebuilt
/// `(max_boardings + 1) × n_stops` arrival/label tables plus a fresh
/// pattern-queue map on every call, so the allocator was on the hottest
/// path in the workspace.
struct Scratch {
    /// `arr[k][s]`: earliest arrival at `s` with ≤ `k` boardings (seconds).
    arr: Vec<Vec<u32>>,
    /// `labels[k][s]`: how round `k` achieved `arr[k][s]`.
    labels: Vec<Vec<Label>>,
    /// Stops improved in the current round.
    marked: Vec<StopId>,
    /// Ride-improved stops, snapshotted before the foot-transfer relaxation.
    ride_marked: Vec<StopId>,
    /// Pattern → earliest marked position, rebuilt each round.
    queue: HashMap<u32, u32>,
    /// The queue in deterministic (sorted) scan order.
    queue_sorted: Vec<(u32, u32)>,
    /// Road-graph Dijkstra state for the access/egress isochrones.
    walk: WalkScratch,
    /// Isochrone output: road nodes within the walk budget.
    walk_nodes: Vec<(NodeId, f64)>,
    /// Stops (with walk seconds) around the origin, then the destination.
    access: Vec<(StopId, u32)>,
}

impl Scratch {
    fn new(rounds: usize, n_stops: usize) -> Self {
        Scratch {
            arr: vec![vec![INF; n_stops]; rounds + 1],
            labels: vec![vec![Label::None; n_stops]; rounds + 1],
            marked: Vec::new(),
            ride_marked: Vec::new(),
            queue: HashMap::new(),
            queue_sorted: Vec::new(),
            walk: WalkScratch::new(),
            walk_nodes: Vec::new(),
            access: Vec::new(),
        }
    }
}

/// The RAPTOR router over a prepared [`TransitNetwork`].
///
/// Holds reusable query scratch behind a `RefCell`, which makes a router
/// `!Sync` — share networks across threads, not routers. Every existing
/// call-site already builds one router per worker.
pub struct Raptor<'n, 'a> {
    net: &'n TransitNetwork<'a>,
    scratch: RefCell<Scratch>,
}

impl<'n, 'a> Raptor<'n, 'a> {
    /// Wraps a prepared network.
    pub fn new(net: &'n TransitNetwork<'a>) -> Self {
        let scratch = RefCell::new(Scratch::new(net.cfg.max_boardings, net.feed.n_stops()));
        Raptor { net, scratch }
    }

    /// Earliest-arriving journey from `origin` to `dest` departing at
    /// `depart` on `day`. Always returns a journey: the walk-only fallback
    /// guarantees finiteness even across a severed network.
    pub fn query(&self, origin: &Point, dest: &Point, depart: Stime, day: DayOfWeek) -> Journey {
        let rounds = self.net.cfg.max_boardings;
        let mut rounds_run = 0u64;
        let mut patterns_scanned = 0u64;

        let mut s = self.scratch.borrow_mut();
        let Scratch {
            arr,
            labels,
            marked,
            ride_marked,
            queue,
            queue_sorted,
            walk,
            walk_nodes,
            access,
        } = &mut *s;
        arr[0].fill(INF);
        labels[0].fill(Label::None);
        marked.clear();

        self.net.access_stops_into(origin, walk, walk_nodes, access);
        for &(st, w) in access.iter() {
            let t = depart.0.saturating_add(w);
            if t < arr[0][st.idx()] {
                arr[0][st.idx()] = t;
                labels[0][st.idx()] = Label::Access { walk_secs: w };
                marked.push(st);
            }
        }

        for k in 1..=rounds {
            let (prev, cur) = arr.split_at_mut(k);
            cur[0].copy_from_slice(&prev[k - 1]);
            labels[k].fill(Label::None);
            if marked.is_empty() {
                continue;
            }
            rounds_run += 1;

            // Queue: each pattern touched by a marked stop, with the
            // earliest marked position along it.
            queue.clear();
            for &s in marked.iter() {
                for &(p, pos) in self.net.patterns_at(s) {
                    queue.entry(p).and_modify(|q| *q = (*q).min(pos)).or_insert(pos);
                }
            }
            marked.clear();

            queue_sorted.clear();
            queue_sorted.extend(queue.iter().map(|(&p, &pos)| (p, pos)));
            queue_sorted.sort_unstable(); // deterministic scan order
            patterns_scanned += queue_sorted.len() as u64;

            for &(pi, start_pos) in queue_sorted.iter() {
                let pattern = &self.net.patterns()[pi as usize];
                let mut active: Option<(usize, usize)> = None; // (trip_idx, board_pos)
                for i in start_pos as usize..pattern.stops.len() {
                    let stop = pattern.stops[i];
                    if let Some((t, b)) = active {
                        let at = pattern.arrival(t, i).0;
                        if at < arr[k][stop.idx()] {
                            arr[k][stop.idx()] = at;
                            labels[k][stop.idx()] = Label::Ride {
                                pattern: pi,
                                trip_idx: t as u32,
                                board_pos: b as u32,
                                alight_pos: i as u32,
                            };
                            marked.push(stop);
                        }
                    }
                    // Board (or re-board an earlier trip) using the previous
                    // round's arrival at this stop.
                    let ready = arr[k - 1][stop.idx()];
                    if ready < INF {
                        let catchable = pattern.earliest_trip(i, Stime(ready), day, self.net.feed);
                        if let Some(t2) = catchable {
                            let earlier = match active {
                                None => true,
                                Some((t, _)) => t2 < t,
                            };
                            if earlier {
                                active = Some((t2, i));
                            }
                        }
                    }
                }
            }

            // Foot transfers from stops improved by riding this round.
            ride_marked.clear();
            ride_marked.extend_from_slice(marked);
            for &s in ride_marked.iter() {
                let base = arr[k][s.idx()];
                for tr in self.net.transfers_from(s) {
                    let t = base.saturating_add(tr.walk_secs);
                    if t < arr[k][tr.to.idx()] {
                        arr[k][tr.to.idx()] = t;
                        labels[k][tr.to.idx()] = Label::Foot { from: s, walk_secs: tr.walk_secs };
                        marked.push(tr.to);
                    }
                }
            }
        }

        // Egress: walkable stops around the destination (symmetric graph).
        // The origin's access list is spent by now, so its buffer is reused.
        let mut best: Option<(u32, StopId, u32)> = None; // (total, stop, egress_walk)
        self.net.access_stops_into(dest, walk, walk_nodes, access);
        for &(s, w) in access.iter() {
            let at = arr[rounds][s.idx()];
            if at == INF {
                continue;
            }
            let total = at.saturating_add(w);
            if best.is_none_or(|(bt, _, _)| total < bt) {
                best = Some((total, s, w));
            }
        }

        let direct = depart.0.saturating_add(self.net.direct_walk_secs(origin, dest));
        // One batched registry update per query: eight labeling workers
        // bumping shared counters per round/pattern would contend on the
        // counters' cache lines inside the inner loop.
        QUERIES.inc();
        ROUNDS.add(rounds_run);
        PATTERNS_SCANNED.add(patterns_scanned);
        match best {
            Some((total, stop, egress)) if total < direct => {
                self.reconstruct(labels, depart, stop, egress, Stime(total))
            }
            _ => Journey::walk_only(depart, direct - depart.0),
        }
    }

    /// Earliest arrival time only (no journey construction) — used by tests
    /// to cross-check against the Dijkstra baseline cheaply.
    pub fn earliest_arrival(
        &self,
        origin: &Point,
        dest: &Point,
        depart: Stime,
        day: DayOfWeek,
    ) -> Stime {
        self.query(origin, dest, depart, day).arrive
    }

    /// Rebuilds legs by walking labels backwards from the egress stop.
    fn reconstruct(
        &self,
        labels: &[Vec<Label>],
        depart: Stime,
        egress_stop: StopId,
        egress_walk: u32,
        arrive: Stime,
    ) -> Journey {
        let mut rev: Vec<Leg> = Vec::new();
        if egress_walk > 0 {
            rev.push(Leg::Walk { secs: egress_walk, to_stop: None });
        }
        let mut k = labels.len() - 1;
        let mut stop = egress_stop;
        loop {
            // Find the round that actually set this stop's current value.
            while labels[k][stop.idx()] == Label::None {
                debug_assert!(k > 0, "unlabeled stop {stop:?} reached during reconstruction");
                k -= 1;
            }
            match labels[k][stop.idx()] {
                Label::None => unreachable!(),
                Label::Access { walk_secs } => {
                    rev.push(Leg::Walk { secs: walk_secs, to_stop: Some(stop) });
                    break;
                }
                Label::Foot { from, walk_secs } => {
                    rev.push(Leg::Walk { secs: walk_secs, to_stop: Some(stop) });
                    stop = from;
                }
                Label::Ride { pattern, trip_idx, board_pos, alight_pos } => {
                    let p = &self.net.patterns()[pattern as usize];
                    let board_stop = p.stops[board_pos as usize];
                    let board = p.departure(trip_idx as usize, board_pos as usize);
                    let alight = p.arrival(trip_idx as usize, alight_pos as usize);
                    rev.push(Leg::Ride {
                        trip: p.trips[trip_idx as usize],
                        route: p.route,
                        from_stop: board_stop,
                        to_stop: stop,
                        board,
                        alight,
                    });
                    stop = board_stop;
                    k -= 1;
                }
            }
        }
        rev.reverse();

        // Forward pass: derive waits from the chain's own clock. They
        // cannot come from `arr`: chained foot transfers may overwrite a
        // parent label after a successor's value was derived from the
        // parent's older (slower) value, so the label chain can reach a
        // boarding stop strictly earlier than `arr` recorded — the slack
        // is real waiting time, and the chain end (never later than the
        // `arr`-based bound) is the journey's true arrival.
        let mut legs: Vec<Leg> = Vec::with_capacity(rev.len() + 1);
        let mut t = depart;
        for leg in rev {
            match leg {
                Leg::Walk { secs, .. } => {
                    t = t.plus(secs);
                    legs.push(leg);
                }
                Leg::Wait { .. } => unreachable!("waits are derived in the forward pass"),
                Leg::Ride { board, alight, from_stop, .. } => {
                    debug_assert!(
                        t.0 <= board.0,
                        "chain reaches {from_stop:?} at {t:?}, after boarding at {board:?}"
                    );
                    let wait = board.0.saturating_sub(t.0);
                    if wait > 0 {
                        legs.push(Leg::Wait { secs: wait, at_stop: from_stop });
                    }
                    t = alight;
                    legs.push(leg);
                }
            }
        }
        debug_assert!(t.0 <= arrive.0, "chain arrival {t:?} exceeds arr bound {arrive:?}");
        let j = Journey { depart, arrive: t, legs };
        debug_assert!(j.check_consistency().is_ok(), "{:?}", j.check_consistency());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AccessCost;
    use crate::network::RouterConfig;
    use staq_synth::{City, CityConfig};

    fn city() -> City {
        City::generate(&CityConfig::small(42))
    }

    fn queries(city: &City, n: usize) -> Vec<(Point, Point)> {
        // Deterministic OD pairs spread across zones.
        (0..n)
            .map(|i| {
                let o = city.zones[(i * 7) % city.zones.len()].centroid;
                let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
                (o, d)
            })
            .collect()
    }

    #[test]
    fn journeys_are_consistent_and_finite() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let depart = Stime::hms(7, 30, 0);
        for (o, d) in queries(&city, 40) {
            let j = router.query(&o, &d, depart, DayOfWeek::Tuesday);
            j.check_consistency().unwrap();
            assert!(j.arrive >= depart);
            assert!(j.jt_secs() < 4 * 3600, "city crossing under 4h, got {}s", j.jt_secs());
        }
    }

    #[test]
    fn some_journeys_use_transit() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let mut rides = 0;
        let mut walks = 0;
        for (o, d) in queries(&city, 40) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
            if j.is_walk_only() {
                walks += 1;
            } else {
                rides += 1;
            }
        }
        assert!(rides > 0, "no transit journeys found at all");
        assert!(walks > 0, "short trips should prefer walking");
    }

    #[test]
    fn transit_never_loses_to_walking_badly() {
        // The router picks transit only when it beats the walk fallback.
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 30) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
            let walk = net.direct_walk_secs(&o, &d);
            assert!(j.jt_secs() <= walk, "journey {} worse than walking {walk}", j.jt_secs());
        }
    }

    #[test]
    fn sunday_has_no_service_so_everything_walks() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 10) {
            let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Sunday);
            assert!(j.is_walk_only());
        }
    }

    #[test]
    fn later_departure_never_arrives_earlier() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in queries(&city, 15) {
            let j1 = router.query(&o, &d, Stime::hms(7, 0, 0), DayOfWeek::Tuesday);
            let j2 = router.query(&o, &d, Stime::hms(7, 20, 0), DayOfWeek::Tuesday);
            assert!(
                j2.arrive >= j1.arrive.minus(1),
                "FIFO violated: {:?} vs {:?}",
                j1.arrive,
                j2.arrive
            );
        }
    }

    #[test]
    fn zero_boardings_config_walks_everywhere() {
        let city = city();
        let cfg = RouterConfig { max_boardings: 0, ..RouterConfig::default() };
        let net = TransitNetwork::new(&city.road, &city.feed, cfg);
        let router = Raptor::new(&net);
        let (o, d) = queries(&city, 1)[0];
        let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
        assert!(j.is_walk_only());
    }

    #[test]
    fn gac_cost_computable_for_all_journeys() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        let gac = AccessCost::gac();
        let jt = AccessCost::jt();
        for (o, d) in queries(&city, 20) {
            let j = router.query(&o, &d, Stime::hms(8, 0, 0), DayOfWeek::Tuesday);
            let g = gac.cost(&j);
            let t = jt.cost(&j);
            assert!(g.is_finite() && g >= 0.0);
            assert!(g >= t * 0.99, "GAC {g} below JT {t}");
        }
    }
}

//! End-to-end test of the HTTP/JSON gateway: a real serve backend, a
//! real gateway in front of it, and raw HTTP/1.1 over loopback TCP —
//! the same path a `curl` user takes.

use staq_serve::gateway::{gateway, GatewayConfig};
use staq_serve::presets::CityPreset;
use staq_serve::ServerConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Minimal HTTP/1.1 client: one fresh connection per request,
/// `Connection: close`, returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn queries_round_trip_through_http_json() {
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, ..Default::default() },
    )
    .expect("bind backend");
    let gw = gateway(server.addr(), &GatewayConfig::default()).expect("bind gateway");
    let addr = gw.addr();

    // Liveness never touches the backend.
    let (status, body) = http(addr, "GET", "/healthz", None);
    assert_eq!((status, body.trim()), (200, r#"{"ok":true}"#));

    // A mean-access query comes back as tagged JSON with real numbers.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/query",
        Some(r#"{"category":"school","query":{"kind":"mean_access"}}"#),
    );
    assert_eq!(status, 200, "query failed: {body}");
    assert!(body.contains(r#""kind":"mean_access""#), "tagged answer: {body}");
    assert!(body.contains(r#""mean_mac":"#) && body.contains(r#""n_zones":"#), "{body}");

    // Worst-zones with a parameter.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/query",
        Some(r#"{"category":"school","query":{"kind":"worst_zones","k":3},"approx":false}"#),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""kind":"worst_zones""#), "{body}");

    // Measures as a GET (also exercises query-param parsing).
    let (status, body) = http(addr, "GET", "/v1/measures?category=school", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with('[') && body.contains(r#""mac":"#), "{body}");

    // Stats reflect the traffic the gateway itself generated.
    let (status, body) = http(addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""pipeline_runs":1"#), "one cold category: {body}");
    assert!(body.contains(r#""cached":["school"]"#), "{body}");

    // A trip plan over HTTP.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/plan",
        Some(
            r#"{"origin":{"x":1000,"y":1000},"dest":{"x":4000,"y":4000},
               "depart":28800,"day":"monday"}"#,
        ),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""journeys":["#), "{body}");

    // Bad inputs are rejected by the gateway with 400s, not forwarded.
    let (status, body) = http(addr, "POST", "/v1/query", Some(r#"{"category":"temple"}"#));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains(r#""error":"#), "{body}");
    let (status, _) = http(addr, "POST", "/v1/query", Some("{not json"));
    assert_eq!(status, 400);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/query",
        Some(r#"{"category":"school","query":{"kind":"telepathy"}}"#),
    );
    assert_eq!(status, 400);

    // Unknown routes and wrong methods.
    assert_eq!(http(addr, "GET", "/v2/query", None).0, 404);
    assert_eq!(http(addr, "GET", "/v1/query", None).0, 405);

    // An edit through the gateway invalidates the cache like a native one.
    let (status, body) =
        http(addr, "POST", "/v1/poi", Some(r#"{"category":"school","x":2000,"y":2000}"#));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""poi_id":"#), "{body}");
    let (_, body) = http(addr, "GET", "/v1/stats", None);
    assert!(body.contains(r#""cached":[]"#), "edit must drop the cache: {body}");

    server.shutdown();

    // With the backend gone, the gateway answers 5xx instead of hanging.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/query",
        Some(r#"{"category":"school","query":{"kind":"mean_access"},"deadline_ms":2000}"#),
    );
    assert!(
        (500..=599).contains(&status),
        "dead backend must surface as a 5xx, got {status}: {body}"
    );
}

//! staq-net — the serving core.
//!
//! A std-only networking layer shared by `staq-serve` and the
//! `staq-shard` router:
//!
//! - [`poll`]: level-triggered readiness poller (`epoll` on Linux,
//!   `poll(2)` fallback elsewhere / in tests).
//! - [`reactor`]: one event-loop thread driving every connection —
//!   nonblocking framed reads into a protocol handler, per-connection
//!   outbound queues, generation-checked [`reactor::ConnId`]s, two-phase
//!   graceful shutdown.
//! - [`admission`]: deadline/budget admission control for the worker
//!   pool (EWMA-estimated queue wait, `Overloaded` shedding).
//! - [`ordered`]: strict in-order response release for pre-v4 protocol
//!   connections (no request IDs on the wire).
//! - [`http`] + [`json`]: the minimal HTTP/1.1 + JSON surface behind the
//!   `staq-gateway` binary.
//! - [`sys`]: the raw libc declarations all of it stands on (no external
//!   crates; std already links libc).

pub mod admission;
pub mod http;
pub mod json;
pub mod ordered;
pub mod poll;
pub mod reactor;
pub mod sys;

pub use admission::{Admission, AdmissionConfig, ShedReason};
pub use ordered::OrderedOut;
pub use poll::{Backend, Event, Interest, Poller};
pub use reactor::{spawn, ConnHandler, ConnId, ReactorConfig, ReactorHandle, ReplySink};

//! Rendezvous (highest-random-weight) hashing from shard key to shard.
//!
//! Every `(key, shard)` pair gets a pseudo-random score; the key lives on
//! the shard with the highest score. The property that matters for
//! resharding: growing from `n` to `n + 1` shards only re-homes the keys
//! whose new-shard score beats their old winner — in expectation `1/(n+1)`
//! of them — and those keys all land on the *new* shard. No key ever moves
//! between surviving shards, so their warm SSR caches stay valid.
//!
//! The score is a [splitmix64] finalizer over the mixed pair. With four
//! POI categories the table could be written by hand; hashing keeps the
//! assignment stable under any future category count without a registry
//! of manual tables per fleet size.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use staq_synth::PoiCategory;

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous score of `key` on `shard`.
fn score(key: u64, shard: u64) -> u64 {
    mix(mix(key).wrapping_add(shard.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)))
}

/// The shard (in `0..n_shards`) that owns an arbitrary 64-bit key.
///
/// Ties are broken toward the lower shard index, deterministically.
pub fn shard_for_key(key: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_for_key needs at least one shard");
    let mut best = 0usize;
    let mut best_score = score(key, 0);
    for s in 1..n_shards {
        let sc = score(key, s as u64);
        if sc > best_score {
            best = s;
            best_score = sc;
        }
    }
    best
}

/// The shard that owns a POI category — the router's placement function.
pub fn shard_for(category: PoiCategory, n_shards: usize) -> usize {
    let key = PoiCategory::ALL.iter().position(|c| *c == category).expect("category in ALL");
    shard_for_key(key as u64, n_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for n in 1..=9 {
            for cat in PoiCategory::ALL {
                let s = shard_for(cat, n);
                assert!(s < n);
                assert_eq!(s, shard_for(cat, n));
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for cat in PoiCategory::ALL {
            assert_eq!(shard_for(cat, 1), 0);
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        // Over many keys, every shard of a 4-way fleet owns a fair share
        // (a loose band — rendezvous is balanced in expectation).
        let n = 4;
        let mut owned = [0usize; 4];
        let keys = 4096u64;
        for k in 0..keys {
            owned[shard_for_key(k, n)] += 1;
        }
        for (s, cnt) in owned.iter().enumerate() {
            let share = *cnt as f64 / keys as f64;
            assert!((0.15..0.35).contains(&share), "shard {s} owns {share:.3} of keys");
        }
    }

    proptest! {
        /// The resharding contract: growing the fleet moves a key either
        /// nowhere or onto the new shard — never between old shards.
        #[test]
        fn growth_only_remaps_onto_the_new_shard(key in 0u64..u64::MAX, n in 1usize..16) {
            let before = shard_for_key(key, n);
            let after = shard_for_key(key, n + 1);
            prop_assert!(after == before || after == n, "key moved {before} -> {after} (new shard {n})");
        }

        /// Roughly 1/(n+1) of keys remap when a shard joins.
        #[test]
        fn growth_remaps_a_minority(n in 2usize..9) {
            let keys = 2048u64;
            let moved = (0..keys).filter(|&k| shard_for_key(k, n) != shard_for_key(k, n + 1)).count();
            let frac = moved as f64 / keys as f64;
            let expect = 1.0 / (n + 1) as f64;
            prop_assert!(frac < 2.5 * expect, "{moved}/{keys} keys moved (expected ~{expect:.3})");
        }
    }
}

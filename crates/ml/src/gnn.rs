//! Graph convolutional network (Kipf & Welling style) over the zone graph.
//!
//! Two graph-convolution layers: `H₁ = ReLU(Â X W₁)`, `Ŷ = Â H₁ W₂`,
//! trained full-batch with Adam on the labeled rows' MSE. The adjacency is
//! the Gaussian-thresholded zone matrix from [`crate::adjacency`], matching
//! the paper's GNN setup (§V-A).

use crate::linalg::Matrix;
use crate::scaler::StandardScaler;
use crate::ssr::{SsrModel, SsrTask};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Two-layer GCN configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gcn {
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f64,
}

impl Default for Gcn {
    fn default() -> Self {
        Gcn { hidden: 32, epochs: 200, lr: 1e-2 }
    }
}

/// Adam state for one parameter matrix.
struct Adam {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl Adam {
    fn new(rows: usize, cols: usize) -> Self {
        Adam { m: Matrix::zeros(rows, cols), v: Matrix::zeros(rows, cols), t: 0 }
    }

    fn step(&mut self, w: &mut Matrix, g: &Matrix, lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let c1 = 1.0 - B1.powf(self.t as f64);
        let c2 = 1.0 - B2.powf(self.t as f64);
        for ((wi, gi), (mi, vi)) in w
            .data_mut()
            .iter_mut()
            .zip(g.data())
            .zip(self.m.data_mut().iter_mut().zip(self.v.data_mut().iter_mut()))
        {
            *mi = B1 * *mi + (1.0 - B1) * gi;
            *vi = B2 * *vi + (1.0 - B2) * gi * gi;
            *wi -= lr * (*mi / c1) / ((*vi / c2).sqrt() + EPS);
        }
    }
}

impl SsrModel for Gcn {
    fn name(&self) -> &'static str {
        "GNN"
    }

    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix {
        task.validate().expect("invalid SSR task");
        let adj = task.adjacency.expect("GNN requires the zone adjacency in SsrTask::adjacency");
        let n_l = task.x_labeled.rows();
        let n_u = task.x_unlabeled.rows();
        assert_eq!(adj.n(), n_l + n_u, "adjacency rows must cover L then U");

        let all_x = task.x_labeled.vstack(task.x_unlabeled);
        let xs = StandardScaler::fit(&all_x);
        let ys = StandardScaler::fit(task.y_labeled);
        let x = xs.transform(&all_x);
        let yl = ys.transform(task.y_labeled);

        let (d, m) = (x.cols(), yl.cols());
        let mut rng = StdRng::seed_from_u64(task.seed ^ 0x6CC);
        let init = |rows: usize, cols: usize, rng: &mut StdRng| {
            let scale = (2.0 / rows as f64).sqrt();
            let mut w = Matrix::zeros(rows, cols);
            for v in w.data_mut() {
                *v = rng.random_range(-1.0..1.0) * scale;
            }
            w
        };
        let mut w1 = init(d, self.hidden, &mut rng);
        let mut w2 = init(self.hidden, m, &mut rng);
        let mut adam1 = Adam::new(d, self.hidden);
        let mut adam2 = Adam::new(self.hidden, m);

        // Â X is training-constant: hoist it out of the loop.
        let ax = adj.spmm(&x);

        for _ in 0..self.epochs {
            // Forward.
            let z1 = ax.matmul(&w1);
            let h1 = z1.map(|v| v.max(0.0));
            let ah1 = adj.spmm(&h1);
            let out = ah1.matmul(&w2);

            // Loss on labeled rows only.
            let scale = 2.0 / (n_l.max(1) * m) as f64;
            let mut dout = Matrix::zeros(adj.n(), m);
            for i in 0..n_l {
                for j in 0..m {
                    dout[(i, j)] = (out[(i, j)] - yl[(i, j)]) * scale;
                }
            }

            // Backward. Â is symmetric, so Âᵀ·G = Â·G via spmm.
            let g_w2 = ah1.transpose().matmul(&dout);
            let dah1 = dout.matmul(&w2.transpose());
            let dh1 = adj.spmm(&dah1);
            let mut dz1 = dh1;
            for i in 0..dz1.rows() {
                for (g, &a) in dz1.row_mut(i).iter_mut().zip(h1.row(i)) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            let g_w1 = ax.transpose().matmul(&dz1);

            adam1.step(&mut w1, &g_w1, self.lr);
            adam2.step(&mut w2, &g_w2, self.lr);
        }

        // Final forward; return the unlabeled block.
        let h1 = adj.spmm(&x).matmul(&w1).map(|v| v.max(0.0));
        let out = adj.spmm(&h1).matmul(&w2);
        let idx: Vec<usize> = (n_l..n_l + n_u).collect();
        ys.inverse_transform(&out.select_rows(&idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::SparseAdj;
    use crate::metrics::mae;

    /// Spatially smooth field on a grid: y = f(position). The GCN's
    /// homophily assumption holds, so it must beat the mean baseline.
    fn spatial_problem(
        n: usize,
        n_l: usize,
        seed: u64,
    ) -> (Vec<(f64, f64)>, Matrix, Matrix, Matrix, Matrix) {
        let g = (n as f64).sqrt().ceil() as usize;
        let mut coords = Vec::new();
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        let mut s = seed;
        let mut noise = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as f64 / u32::MAX as f64 - 0.5
        };
        for i in 0..n {
            let (x, y) = ((i % g) as f64 * 100.0, (i / g) as f64 * 100.0);
            coords.push((x, y));
            let f1 = (x / 400.0).sin();
            let f2 = (y / 400.0).cos();
            feats.push(vec![f1, f2, noise() * 0.1]);
            targets.push(vec![3.0 * f1 + 2.0 * f2 + noise() * 0.1, f1 * f2]);
        }
        let xl = Matrix::from_rows(&feats[..n_l]);
        let yl = Matrix::from_rows(&targets[..n_l]);
        let xu = Matrix::from_rows(&feats[n_l..]);
        let yu = Matrix::from_rows(&targets[n_l..]);
        (coords, xl, yl, xu, yu)
    }

    #[test]
    fn beats_mean_baseline_on_spatial_data() {
        let (coords, xl, yl, xu, yu) = spatial_problem(100, 40, 3);
        let adj = SparseAdj::gaussian_threshold(&coords, 8, 1e-4, None);
        let task = SsrTask {
            x_labeled: &xl,
            y_labeled: &yl,
            x_unlabeled: &xu,
            adjacency: Some(&adj),
            seed: 3,
        };
        let pred = Gcn::default().fit_predict(&task);
        let err = mae(&yu.col_vec(0), &pred.col_vec(0));
        let mean = yl.col_vec(0).iter().sum::<f64>() / yl.rows() as f64;
        let base = mae(&yu.col_vec(0), &vec![mean; yu.rows()]);
        assert!(err < base * 0.6, "GNN {err} vs baseline {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (coords, xl, yl, xu, _) = spatial_problem(64, 20, 7);
        let adj = SparseAdj::gaussian_threshold(&coords, 6, 1e-4, None);
        let task = SsrTask {
            x_labeled: &xl,
            y_labeled: &yl,
            x_unlabeled: &xu,
            adjacency: Some(&adj),
            seed: 5,
        };
        let g = Gcn { epochs: 30, ..Default::default() };
        assert_eq!(g.fit_predict(&task), g.fit_predict(&task));
    }

    #[test]
    #[should_panic(expected = "requires the zone adjacency")]
    fn missing_adjacency_panics() {
        let (_, xl, yl, xu, _) = spatial_problem(36, 12, 1);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        Gcn::default().fit_predict(&task);
    }

    #[test]
    fn output_shape() {
        let (coords, xl, yl, xu, _) = spatial_problem(49, 19, 2);
        let adj = SparseAdj::gaussian_threshold(&coords, 6, 1e-4, None);
        let task = SsrTask {
            x_labeled: &xl,
            y_labeled: &yl,
            x_unlabeled: &xu,
            adjacency: Some(&adj),
            seed: 0,
        };
        let p = Gcn { epochs: 5, ..Default::default() }.fit_predict(&task);
        assert_eq!((p.rows(), p.cols()), (30, 2));
    }
}

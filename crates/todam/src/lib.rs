//! # staq-todam
//!
//! The **Temporal Origin-Destination Access Matrix** (paper §III-C): the
//! three-dimensional `|Z| x |P| x |R|` structure whose entries are trips
//! `(z_i, p_j, t)`, plus the gravity-model machinery that shrinks it.
//!
//! The paper's key construction move: instead of materializing the full
//! matrix `M_f` and weighting costs by attractiveness afterwards (the Hansen
//! equation), the attractiveness score `α_ij` gates *trip sampling* — pairs
//! with `α_ij = 0` generate no trips, pairs with high `α_ij` sample many —
//! yielding the gravity matrix `M_g` that is 60–98 % smaller (Table I)
//! while leaving the downstream aggregation a plain mean.
//!
//! * [`attractiveness`] — negative-exponential distance decay `α_ij`,
//!   normalized per zone (§III-C, §V-A).
//! * [`sampling`] — the global start-time set `R` and the per-pair binomial
//!   thinning `r^{i,j} ∝ α_ij`.
//! * [`matrix`] — the compressed trip store (zone-sorted CSR).
//! * [`build`] — `M_g` construction.
//! * [`label`] — SPQ labeling of trips through the RAPTOR router, parallel
//!   across zones; produces the per-zone mean/std used both as ground truth
//!   and as SSR targets.
//! * [`stats`] — Table I's full-vs-gravity size accounting.

pub mod attractiveness;
pub mod build;
pub mod label;
pub mod matrix;
pub mod sampling;
pub mod stats;

pub use attractiveness::Attractiveness;
pub use build::TodamSpec;
pub use label::{LabelEngine, LabelSchedule, ZoneStats};
pub use matrix::{Todam, Trip};
pub use stats::MatrixStats;

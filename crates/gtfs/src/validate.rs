//! Feed validation: the invariants every downstream stage assumes.

use crate::model::Feed;

/// A single validation failure, human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Checks referential integrity, stop-time monotonicity, and basic sanity.
/// Returns every violation found (empty = valid).
///
/// Checked invariants:
/// 1. all id references resolve (dense ids in range);
/// 2. within each trip, `seq` strictly increases and arrival/departure times
///    are non-decreasing along the trip, with `departure >= arrival` at each
///    call;
/// 3. every trip has at least two calls (a one-call trip can never carry a
///    passenger anywhere);
/// 4. stop coordinates are finite;
/// 5. every service operates on at least one day.
pub fn validate(feed: &Feed) -> Vec<Violation> {
    let mut out = Vec::new();
    let v = |s: String| Violation(s);

    for stop in &feed.stops {
        if !stop.pos.is_finite() {
            out.push(v(format!("stop {} has non-finite position", stop.gtfs_id)));
        }
    }
    for route in &feed.routes {
        if route.agency.idx() >= feed.agencies.len() {
            out.push(v(format!("route {} references missing agency", route.gtfs_id)));
        }
    }
    for svc in &feed.services {
        if !svc.days.iter().any(|&d| d) {
            out.push(v(format!("service {} never operates", svc.gtfs_id)));
        }
    }
    for trip in &feed.trips {
        if trip.route.idx() >= feed.routes.len() {
            out.push(v(format!("trip {} references missing route", trip.gtfs_id)));
        }
        if trip.service.idx() >= feed.services.len() {
            out.push(v(format!("trip {} references missing service", trip.gtfs_id)));
        }
    }

    // Per-trip checks over the canonical ordering.
    let mut call_counts = vec![0u32; feed.trips.len()];
    let mut i = 0usize;
    let sts = &feed.stop_times;
    while i < sts.len() {
        let trip = sts[i].trip;
        if trip.idx() >= feed.trips.len() {
            out.push(v(format!("stop_time references missing trip #{}", trip.0)));
            i += 1;
            continue;
        }
        let start = i;
        while i < sts.len() && sts[i].trip == trip {
            let st = &sts[i];
            if st.stop.idx() >= feed.stops.len() {
                out.push(v(format!(
                    "trip {} call {} references missing stop",
                    feed.trips[trip.idx()].gtfs_id,
                    st.seq
                )));
            }
            if st.departure < st.arrival {
                out.push(v(format!(
                    "trip {} call {} departs before it arrives",
                    feed.trips[trip.idx()].gtfs_id,
                    st.seq
                )));
            }
            if i > start {
                let prev = &sts[i - 1];
                if st.seq <= prev.seq {
                    out.push(v(format!(
                        "trip {} stop_sequence not strictly increasing at {}",
                        feed.trips[trip.idx()].gtfs_id,
                        st.seq
                    )));
                }
                if st.arrival < prev.departure {
                    out.push(v(format!(
                        "trip {} time travels between seq {} and {}",
                        feed.trips[trip.idx()].gtfs_id,
                        prev.seq,
                        st.seq
                    )));
                }
            }
            i += 1;
        }
        call_counts[trip.idx()] = (i - start) as u32;
    }
    for (t, &n) in call_counts.iter().enumerate() {
        if n == 1 {
            out.push(v(format!("trip {} has a single call", feed.trips[t].gtfs_id)));
        }
    }
    out
}

/// Convenience: panics with all violations when the feed is invalid. Used at
/// the boundary between synthesis and the pipeline so experiments fail fast
/// on generator bugs rather than producing subtly wrong numbers.
pub fn assert_valid(feed: &Feed) {
    let violations = validate(feed);
    assert!(
        violations.is_empty(),
        "invalid GTFS feed ({} violations):\n{}",
        violations.len(),
        violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::tests::tiny_feed_text;
    use crate::time::Stime;

    #[test]
    fn tiny_feed_is_valid() {
        let feed = tiny_feed_text().parse().unwrap();
        assert!(validate(&feed).is_empty());
        assert_valid(&feed);
    }

    #[test]
    fn detects_time_travel() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times[1].arrival = Stime::hms(6, 0, 0);
        let vs = validate(&feed);
        assert!(vs.iter().any(|v| v.0.contains("time travels")), "{vs:?}");
    }

    #[test]
    fn detects_departure_before_arrival() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times[0].departure = Stime(0);
        assert!(validate(&feed).iter().any(|v| v.0.contains("departs before")));
    }

    #[test]
    fn detects_single_call_trip() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times.pop();
        assert!(validate(&feed).iter().any(|v| v.0.contains("single call")));
    }

    #[test]
    fn detects_never_operating_service() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.services[0].days = [false; 7];
        assert!(validate(&feed).iter().any(|v| v.0.contains("never operates")));
    }

    #[test]
    fn detects_non_finite_stop() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stops[0].pos = staq_geom::Point::new(f64::NAN, 0.0);
        assert!(validate(&feed).iter().any(|v| v.0.contains("non-finite")));
    }

    #[test]
    fn detects_nonmonotone_sequence() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.stop_times[1].seq = 0;
        assert!(validate(&feed).iter().any(|v| v.0.contains("not strictly increasing")));
    }

    #[test]
    #[should_panic(expected = "invalid GTFS feed")]
    fn assert_valid_panics_on_bad_feed() {
        let mut feed = tiny_feed_text().parse().unwrap();
        feed.services[0].days = [false; 7];
        assert_valid(&feed);
    }
}

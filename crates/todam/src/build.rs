//! Gravity-matrix construction (paper §III-C).

use crate::attractiveness::Attractiveness;
use crate::matrix::{Todam, Trip};
use crate::sampling;
use serde::{Deserialize, Serialize};
use staq_gtfs::time::TimeInterval;
use staq_synth::{City, PoiCategory};

/// Everything that parameterizes a TODAM build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TodamSpec {
    /// The assessed time interval `v`.
    pub interval: TimeInterval,
    /// Start-time samples per hour (|R| = rate × window hours). The paper's
    /// Table I corresponds to 30/hr over the 2 h AM peak (|R| = 60).
    pub per_hour: u32,
    /// Trip-budget multiplier γ: keep probability is `min(1, γ·α_ij)`.
    pub gamma: f64,
    /// Distance-decay model for `α_ij`.
    pub attractiveness: Attractiveness,
    /// Seed for `R` and the per-pair thinning streams.
    pub seed: u64,
}

impl Default for TodamSpec {
    fn default() -> Self {
        TodamSpec {
            interval: TimeInterval::am_peak(),
            per_hour: 30,
            gamma: 15.0,
            attractiveness: Attractiveness::default(),
            seed: 0xDA7A,
        }
    }
}

impl TodamSpec {
    /// Builds the gravity matrix `M_g` for one POI category of `city`.
    ///
    /// Construction is deterministic in `(spec, city)` regardless of
    /// evaluation order (per-pair RNG streams).
    pub fn build(&self, city: &City, category: PoiCategory) -> Todam {
        let pois = city.pois_of(category);
        assert!(!pois.is_empty(), "city has no POIs of category {category}");
        let poi_points: Vec<_> = pois.iter().map(|p| p.pos).collect();
        let poi_ids: Vec<_> = pois.iter().map(|p| p.id).collect();

        let times = sampling::draw_start_times(&self.interval, self.per_hour, self.seed);
        let full_size = city.n_zones() as u64 * pois.len() as u64 * times.len() as u64;

        let mut per_zone_trips: Vec<Vec<Trip>> = Vec::with_capacity(city.n_zones());
        let mut alpha_sparse: Vec<Vec<(u32, f64)>> = Vec::with_capacity(city.n_zones());
        for zone in &city.zones {
            let alpha = self.attractiveness.scores(&zone.centroid, &poi_points);
            let mut ztrips = Vec::new();
            let mut zalpha = Vec::new();
            for (j, &a) in alpha.iter().enumerate() {
                if a <= 0.0 {
                    continue;
                }
                zalpha.push((j as u32, a));
                for t in
                    sampling::thin_for_pair(&times, a, self.gamma, self.seed, zone.id.0, j as u32)
                {
                    ztrips.push(Trip { zone: zone.id, poi_idx: j as u32, start: t });
                }
            }
            per_zone_trips.push(ztrips);
            alpha_sparse.push(zalpha);
        }
        let m = Todam::from_parts(poi_ids, per_zone_trips, alpha_sparse, full_size);
        debug_assert!(m.check_invariants().is_ok());
        m
    }

    /// Size of the *full* matrix `M_f` for one category without building it.
    pub fn full_size(&self, city: &City, category: PoiCategory) -> u64 {
        let n_r = (self.interval.duration_hours() * self.per_hour as f64).round() as u64;
        city.n_zones() as u64 * city.pois_of(category).len() as u64 * n_r.max(1)
    }
}

/// Resolves a trip's POI position (matrices store category-local indices).
pub fn trip_poi_pos(city: &City, m: &Todam, trip: &Trip) -> staq_geom::Point {
    city.pois[m.pois[trip.poi_idx as usize].idx()].pos
}

/// Resolves a trip's origin centroid.
pub fn trip_origin(city: &City, trip: &Trip) -> staq_geom::Point {
    city.zone_centroid(trip.zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::{CityConfig, ZoneId};

    fn city() -> City {
        City::generate(&CityConfig::small(42))
    }

    #[test]
    fn build_produces_valid_matrix() {
        let city = city();
        let m = TodamSpec::default().build(&city, PoiCategory::School);
        m.check_invariants().unwrap();
        assert_eq!(m.n_zones(), city.n_zones());
        assert!(m.n_trips() > 0);
        assert_eq!(m.full_size, TodamSpec::default().full_size(&city, PoiCategory::School));
    }

    #[test]
    fn gravity_matrix_is_smaller_for_large_poi_sets() {
        let city = city();
        // Reduction depends on how sharply attractiveness decays relative to
        // the POI spacing; the 4 km test city needs a tighter decay than the
        // 16 km default calibrated for paper-scale cities.
        let spec = TodamSpec {
            attractiveness: crate::Attractiveness { decay_m: 600.0, cutoff_rel: 0.05 },
            ..Default::default()
        };
        let schools = spec.build(&city, PoiCategory::School);
        assert!(schools.reduction_pct() > 30.0, "school reduction {}", schools.reduction_pct());
    }

    #[test]
    fn tiny_poi_sets_reduce_less() {
        // Mirrors Table I: Coventry job centers (|P| = 2) reduce ~0%.
        let city = city();
        let spec = TodamSpec::default();
        let jobs = spec.build(&city, PoiCategory::JobCenter);
        let schools = spec.build(&city, PoiCategory::School);
        assert!(
            jobs.reduction_pct() < schools.reduction_pct(),
            "jobs {} vs schools {}",
            jobs.reduction_pct(),
            schools.reduction_pct()
        );
    }

    #[test]
    fn construction_is_deterministic() {
        let city = city();
        let spec = TodamSpec::default();
        let a = spec.build(&city, PoiCategory::VaxCenter);
        let b = spec.build(&city, PoiCategory::VaxCenter);
        assert_eq!(a.trips(), b.trips());
    }

    #[test]
    fn every_zone_with_positive_alpha_can_generate_trips() {
        let city = city();
        let m = TodamSpec::default().build(&city, PoiCategory::Hospital);
        // At γ = 15 a zone whose nearest hospital dominates (α near 1)
        // keeps every start time; check a sane aggregate rather than per
        // zone randomness: most zones have at least one trip.
        let zones_with_trips =
            (0..m.n_zones()).filter(|&z| !m.zone_trips(ZoneId(z as u32)).is_empty()).count();
        assert!(
            zones_with_trips * 10 >= m.n_zones() * 9,
            "{zones_with_trips}/{} zones have trips",
            m.n_zones()
        );
    }

    #[test]
    fn trip_start_times_lie_in_interval() {
        let city = city();
        let spec = TodamSpec::default();
        let m = spec.build(&city, PoiCategory::School);
        for t in m.trips() {
            assert!(spec.interval.contains(t.start));
        }
    }

    #[test]
    fn trip_resolution_helpers() {
        let city = city();
        let m = TodamSpec::default().build(&city, PoiCategory::School);
        let t = m.trips()[0];
        let origin = trip_origin(&city, &t);
        let dest = trip_poi_pos(&city, &m, &t);
        assert_eq!(origin, city.zone_centroid(t.zone));
        assert!(dest.is_finite());
    }
}

//! Proof that warm RAPTOR queries stay off the allocator: the per-router
//! scratch (arrival/label tables, mark lists, pattern queue) is cleared
//! between queries, never rebuilt. Before the scratch existed, every query
//! allocated `(max_boardings + 1)` arrival rows, the same number of label
//! rows, a pattern-queue `HashMap` and its sorted `Vec` per round — ~15+
//! heap allocations each, sized by stop count.
//!
//! Kept as the single test in this binary so no concurrent test perturbs
//! the global allocation counter.

use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{Raptor, TransitNetwork};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator that counts allocation events (not bytes).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warm_queries_amortize_to_zero_scratch_allocs() {
    let city = City::generate(&CityConfig::small(42));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);

    let ods: Vec<_> = (0..25)
        .map(|i| {
            let o = city.zones[(i * 7) % city.zones.len()].centroid;
            let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
            (o, d)
        })
        .collect();
    let depart = Stime::hms(7, 30, 0);

    // Warm-up: grows marked/queue buffers to their steady-state capacity.
    for (o, d) in &ods {
        std::hint::black_box(router.query(o, d, depart, DayOfWeek::Tuesday));
    }

    const REPS: u64 = 8;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..REPS {
        for (o, d) in &ods {
            std::hint::black_box(router.query(o, d, depart, DayOfWeek::Tuesday));
        }
    }
    let per_query = (ALLOCS.load(Ordering::Relaxed) - before) as f64 / (REPS * 25) as f64;

    // The only remaining per-query allocations build the returned `Journey`
    // (leg vectors in reconstruction) — a small constant, independent of
    // stop count and round count. The pre-scratch router sat well above
    // this bound from its table/queue rebuilds alone.
    assert!(
        per_query <= 6.0,
        "warm RAPTOR queries average {per_query:.1} allocs — scratch is being rebuilt"
    );
}

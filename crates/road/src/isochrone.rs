//! Walking isochrones `W_i` (paper §IV-A, Fig. 2C).
//!
//! "An isochrone for each z_i ∈ Z is pre-computed ... given an acceptable
//! walkable time in seconds (τ) and a walking speed (ω). This outputs a set
//! of shapefiles representing the walkable area around each z_i."
//!
//! Here an isochrone is a budget-bounded Dijkstra from the zone's snapped
//! road node, hulled into a polygon. Both the reachable node set (exact) and
//! the polygon (for cheap point-membership and overlap tests) are kept.

use crate::dijkstra::bounded_walk_times;
use crate::graph::{NodeId, RoadGraph};
use serde::{Deserialize, Serialize};
use staq_geom::hull::hull_polygon;
use staq_geom::{Point, Polygon};

/// Parameters for isochrone generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsochroneParams {
    /// Acceptable walking budget τ in seconds.
    pub tau_secs: f64,
    /// Walking speed ω in meters per second.
    pub omega_mps: f64,
}

impl Default for IsochroneParams {
    fn default() -> Self {
        IsochroneParams { tau_secs: crate::DEFAULT_TAU_SECS, omega_mps: crate::DEFAULT_OMEGA_MPS }
    }
}

impl IsochroneParams {
    /// Maximum crow-flies distance walkable within the budget, in meters.
    #[inline]
    pub fn max_radius_m(&self) -> f64 {
        self.tau_secs * self.omega_mps
    }
}

/// A walking isochrone: the area reachable on foot within `τ` seconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Isochrone {
    /// Point it was grown from.
    pub origin: Point,
    /// Road node the origin snapped to.
    pub root: NodeId,
    /// Reachable `(node, walking seconds)` pairs, non-decreasing in time.
    pub reachable: Vec<(NodeId, f64)>,
    /// Hull polygon of the reachable area. Degenerate walksheds (an isolated
    /// node, a single street) fall back to a small square so membership
    /// tests remain meaningful.
    pub shape: Polygon,
}

impl Isochrone {
    /// Grows the isochrone for `origin` snapped to `root` on graph `g`.
    ///
    /// The walk from `origin` to `root` itself consumes budget at `ω`; the
    /// remaining budget bounds the graph expansion, mirroring how a resident
    /// first walks from their front door to the network.
    pub fn grow(g: &RoadGraph, origin: Point, root: NodeId, params: &IsochroneParams) -> Self {
        let entry_cost = origin.dist(&g.pos(root)) / params.omega_mps;
        let remaining = (params.tau_secs - entry_cost).max(0.0);
        let reachable = bounded_walk_times(g, root, remaining);
        let mut pts: Vec<Point> = reachable.iter().map(|&(n, _)| g.pos(n)).collect();
        pts.push(origin);
        let shape = hull_polygon(&pts).unwrap_or_else(|| {
            // Fewer than 3 non-collinear reachable points: a minimal square
            // around the origin (half the 1-minute walking radius).
            Polygon::square(origin, (params.omega_mps * 60.0).max(1.0) * 0.5)
        });
        Isochrone { origin, root, reachable, shape }
    }

    /// True when `p` lies in the walkable area.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.shape.contains(p)
    }

    /// True when two walksheds overlap (the interchange test, §IV-B1).
    #[inline]
    pub fn overlaps(&self, other: &Isochrone) -> bool {
        self.shape.intersects_approx(&other.shape)
    }

    /// Walking seconds to `node` if it is inside the isochrone.
    pub fn time_to(&self, node: NodeId) -> Option<f64> {
        self.reachable.iter().find(|&&(n, _)| n == node).map(|&(_, t)| t)
    }

    /// Number of reachable road nodes.
    #[inline]
    pub fn n_reachable(&self) -> usize {
        self.reachable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;

    /// 5x5 grid, 100m spacing, walking speed 1.25 m/s => 80s per edge.
    fn grid_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                ids.push(b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0)));
            }
        }
        for i in 0..5usize {
            for j in 0..5usize {
                let cur = ids[i * 5 + j];
                if i + 1 < 5 {
                    b.add_walk_edge(cur, ids[(i + 1) * 5 + j], 1.25);
                }
                if j + 1 < 5 {
                    b.add_walk_edge(cur, ids[i * 5 + j + 1], 1.25);
                }
            }
        }
        b.build()
    }

    #[test]
    fn grows_bounded_area() {
        let g = grid_graph();
        let params = IsochroneParams { tau_secs: 170.0, omega_mps: 1.25 };
        // Root at the grid center (node 12 = (2,2)).
        let origin = g.pos(NodeId(12));
        let iso = Isochrone::grow(&g, origin, NodeId(12), &params);
        // Two hops = 160s fits; three hops = 240s doesn't.
        assert!(iso.time_to(NodeId(12)).unwrap() == 0.0);
        assert!(iso.time_to(NodeId(10)).is_some(), "two hops west reachable");
        assert!(iso.time_to(NodeId(0)).is_none(), "corner is 4 hops away");
        assert!(iso.n_reachable() >= 5);
        assert!(iso.contains(&origin));
    }

    #[test]
    fn entry_walk_consumes_budget() {
        let g = grid_graph();
        let params = IsochroneParams { tau_secs: 100.0, omega_mps: 1.25 };
        // Origin 100m from the root: 80s entry cost leaves only 20s.
        let origin = g.pos(NodeId(12)).offset(100.0, 0.0);
        let iso = Isochrone::grow(&g, origin, NodeId(12), &params);
        assert_eq!(iso.n_reachable(), 1, "only the root itself fits");
    }

    #[test]
    fn degenerate_walkshed_gets_fallback_square() {
        let mut b = RoadGraphBuilder::new();
        let lone = b.add_node(Point::new(0.0, 0.0));
        let g = b.build();
        let iso = Isochrone::grow(&g, Point::new(0.0, 0.0), lone, &IsochroneParams::default());
        assert!(iso.contains(&Point::new(5.0, 5.0)));
        assert!(!iso.contains(&Point::new(500.0, 500.0)));
    }

    #[test]
    fn overlap_detection() {
        let g = grid_graph();
        let params = IsochroneParams { tau_secs: 170.0, omega_mps: 1.25 };
        let a = Isochrone::grow(&g, g.pos(NodeId(6)), NodeId(6), &params); // (1,1)
        let b2 = Isochrone::grow(&g, g.pos(NodeId(18)), NodeId(18), &params); // (3,3)
        let far_params = IsochroneParams { tau_secs: 50.0, omega_mps: 1.25 };
        let c = Isochrone::grow(&g, g.pos(NodeId(0)), NodeId(0), &far_params);
        let d = Isochrone::grow(&g, g.pos(NodeId(24)), NodeId(24), &far_params);
        assert!(a.overlaps(&b2), "adjacent walksheds overlap");
        assert!(!c.overlaps(&d), "opposite corners with tiny budgets don't");
    }

    #[test]
    fn max_radius_matches_params() {
        let p = IsochroneParams { tau_secs: 600.0, omega_mps: 1.25 };
        assert_eq!(p.max_radius_m(), 750.0);
    }

    #[test]
    fn default_params_match_paper() {
        let p = IsochroneParams::default();
        assert_eq!(p.tau_secs, 600.0);
        assert!((p.omega_mps - 1.25).abs() < 1e-9);
    }
}

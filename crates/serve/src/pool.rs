//! Fixed-size worker pool over a bounded request queue.
//!
//! Connection threads enqueue [`Job`]s; `N` workers execute them against
//! the shared [`AccessEngine`] and send the [`Response`] back through the
//! job's reply channel. The queue is bounded, so a flood of requests
//! exerts backpressure on connection threads instead of growing memory
//! without limit. Dropping the pool (or calling [`WorkerPool::shutdown`])
//! closes the queue; workers drain what is left and exit.

use crate::codec::{ErrorCode, Request, Response, StatsReply};
use crossbeam::channel::{bounded, Receiver, Sender};
use staq_core::AccessEngine;
use staq_obs::{trace, AtomicHistogram, Counter, SpanContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Requests executed, all kinds (the registry's view of
/// `PoolStats::requests_served`, which stays per-pool).
static REQUESTS: Counter = Counter::new("serve.requests");
/// Server-side execution latency per request kind — queue wait excluded,
/// engine time included, so the histograms price the work itself.
static H_MEASURES: AtomicHistogram = AtomicHistogram::new("serve.request.measures");
static H_QUERY: AtomicHistogram = AtomicHistogram::new("serve.request.query");
static H_ADD_POI: AtomicHistogram = AtomicHistogram::new("serve.request.add_poi");
static H_ADD_BUS_ROUTE: AtomicHistogram = AtomicHistogram::new("serve.request.add_bus_route");
static H_STATS: AtomicHistogram = AtomicHistogram::new("serve.request.stats");
static H_TRACE_DUMP: AtomicHistogram = AtomicHistogram::new("serve.request.trace_dump");

/// The latency histogram for one request kind; names follow
/// [`Request::kind_label`] under the `serve.request.` prefix.
fn kind_histogram(request: &Request) -> &'static AtomicHistogram {
    match request {
        Request::Measures { .. } => &H_MEASURES,
        Request::Query { .. } => &H_QUERY,
        Request::AddPoi { .. } => &H_ADD_POI,
        Request::AddBusRoute { .. } => &H_ADD_BUS_ROUTE,
        Request::Stats => &H_STATS,
        Request::TraceDump { .. } => &H_TRACE_DUMP,
    }
}

/// One queued request plus the channel its answer goes back on.
pub struct Job {
    pub request: Request,
    pub reply: Sender<Response>,
    /// Span context of the connection's `serve.request` span; the worker
    /// re-attaches it so engine spans land in the caller's trace.
    pub ctx: SpanContext,
    /// When the job entered the queue — priced as `serve.queue_wait`.
    pub enqueued: Instant,
}

impl Job {
    /// A job carrying the current thread's span context, enqueued now.
    pub fn new(request: Request, reply: Sender<Response>) -> Job {
        Job { request, reply, ctx: trace::current(), enqueued: Instant::now() }
    }
}

/// Shared counters the pool maintains for `Stats` requests.
#[derive(Default)]
pub struct PoolStats {
    requests_served: AtomicU64,
}

impl PoolStats {
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }
}

/// Fixed worker threads executing requests against one shared engine.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    size: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads with a queue of `queue_depth` jobs.
    pub fn spawn(engine: Arc<AccessEngine>, workers: usize, queue_depth: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        assert!(queue_depth >= 1, "the queue must hold at least one job");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(queue_depth);
        let stats = Arc::new(PoolStats::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let engine = Arc::clone(&engine);
                let stats = Arc::clone(&stats);
                let size = workers;
                std::thread::Builder::new()
                    .name(format!("staq-worker-{i}"))
                    .spawn(move || worker_loop(rx, engine, stats, size))
                    .expect("spawning worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers: handles, stats, size: workers }
    }

    /// Queue sender for connection threads. Cloning is cheap.
    pub fn sender(&self) -> Sender<Job> {
        self.tx.as_ref().expect("pool is running").clone()
    }

    /// Pool-wide counters.
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Closes the queue and joins every worker; pending jobs are drained
    /// first. Idempotent.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            h.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    engine: Arc<AccessEngine>,
    stats: Arc<PoolStats>,
    pool_size: usize,
) {
    while let Ok(job) = rx.recv() {
        // Adopt the connection's trace on this worker thread: the queue
        // wait is backdated to enqueue time, then execution runs under it.
        let _ctx = trace::attach(job.ctx);
        drop(trace::span_at("serve.queue_wait", job.enqueued));
        let response = execute(&engine, &stats, pool_size, &job.request);
        stats.requests_served.fetch_add(1, Ordering::Relaxed);
        // A dropped reply receiver means the connection died; fine.
        let _ = job.reply.send(response);
    }
}

/// Executes one request against the engine, timing it into the kind's
/// latency histogram. Validation happens here (not in the engine, which
/// asserts) so a bad request becomes an error frame instead of a dead
/// worker.
pub fn execute(
    engine: &AccessEngine,
    stats: &PoolStats,
    pool_size: usize,
    request: &Request,
) -> Response {
    let t0 = Instant::now();
    let span = trace::span("serve.execute");
    let response = execute_inner(engine, stats, pool_size, request);
    drop(span);
    REQUESTS.inc();
    kind_histogram(request).record(t0.elapsed());
    response
}

fn execute_inner(
    engine: &AccessEngine,
    stats: &PoolStats,
    pool_size: usize,
    request: &Request,
) -> Response {
    match request {
        Request::Measures { category } => {
            Response::Measures(engine.measures(*category).predicted.clone())
        }
        Request::Query { category, query } => Response::Query(engine.query(query, *category)),
        Request::AddPoi { category, pos } => {
            if !pos.x.is_finite() || !pos.y.is_finite() {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "POI position must be finite".into(),
                };
            }
            Response::AddPoi { poi_id: engine.add_poi(*category, *pos).0 }
        }
        Request::AddBusRoute { stops, headway_s } => {
            if stops.len() < 2 {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "a route needs at least two stops".into(),
                };
            }
            if stops.iter().any(|p| !p.x.is_finite() || !p.y.is_finite()) {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "route stops must be finite".into(),
                };
            }
            Response::AddBusRoute { zones_rebuilt: engine.add_bus_route(stops, *headway_s) as u32 }
        }
        Request::Stats => Response::Stats(StatsReply {
            pipeline_runs: engine.pipeline_runs(),
            requests_served: stats.requests_served(),
            cached: engine.cached_categories(),
            workers: pool_size as u16,
            // The snapshot is taken before this stats request's own
            // latency lands, so `serve.request.stats` lags itself by one.
            metrics: staq_obs::snapshot(),
        }),
        Request::TraceDump { min_dur_ns, set_capture_ns } => {
            if let Some(ns) = set_capture_ns {
                trace::set_capture_min_ns(*ns);
            }
            Response::TraceDump(trace::dump(*min_dur_ns))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_core::PipelineConfig;
    use staq_ml::ModelKind;
    use staq_synth::{City, CityConfig, PoiCategory};
    use staq_todam::TodamSpec;

    fn engine() -> Arc<AccessEngine> {
        let city = City::generate(&CityConfig::small(42));
        Arc::new(AccessEngine::new(
            city,
            PipelineConfig {
                beta: 0.25,
                model: ModelKind::Ols,
                todam: TodamSpec { per_hour: 3, ..Default::default() },
                ..Default::default()
            },
        ))
    }

    fn roundtrip(pool: &WorkerPool, request: Request) -> Response {
        let (reply_tx, reply_rx) = bounded(1);
        pool.sender().send(Job::new(request, reply_tx)).unwrap();
        reply_rx.recv().unwrap()
    }

    #[test]
    fn pool_answers_and_counts_requests() {
        let pool = WorkerPool::spawn(engine(), 2, 8);
        match roundtrip(&pool, Request::Measures { category: PoiCategory::School }) {
            Response::Measures(ms) => assert!(!ms.is_empty()),
            other => panic!("{other:?}"),
        }
        match roundtrip(&pool, Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.pipeline_runs, 1);
                assert_eq!(s.requests_served, 1); // stats itself not yet counted
                assert_eq!(s.cached, vec![PoiCategory::School]);
                assert_eq!(s.workers, 2);
                // The embedded snapshot saw the measures request land
                // (obs statics are process-global, so only lower bounds
                // hold when tests share the binary).
                assert!(s.metrics.counter("serve.requests").unwrap_or(0) >= 1);
                let h = s.metrics.histogram("serve.request.measures").expect("measures hist");
                assert!(h.count >= 1, "measures latency must be recorded");
                assert!(h.p50_ns > 0, "recorded latencies are nonzero");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_edits_become_error_frames_not_panics() {
        let pool = WorkerPool::spawn(engine(), 1, 4);
        match roundtrip(
            &pool,
            Request::AddBusRoute { stops: vec![staq_geom::Point::new(0.0, 0.0)], headway_s: 600 },
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Invalid),
            other => panic!("{other:?}"),
        }
        // The worker survived and keeps serving.
        match roundtrip(&pool, Request::Stats) {
            Response::Stats(s) => assert_eq!(s.requests_served, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_joins_workers() {
        let mut pool = WorkerPool::spawn(engine(), 3, 4);
        pool.shutdown();
        pool.shutdown(); // idempotent
    }
}

//! Dynamic-scenario integration: the engine's edits keep every invariant of
//! the underlying structures and produce the causally expected direction of
//! change.

use staq_repro::gtfs::validate;
use staq_repro::prelude::*;

fn engine() -> AccessEngine {
    let city = City::generate(&CityConfig::small(42));
    AccessEngine::new(
        city,
        PipelineConfig {
            beta: 0.2,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        },
    )
}

#[test]
fn added_route_keeps_feed_valid() {
    let e = engine();
    let a = e.city().zones[3].centroid;
    let b = e.city().cores[0];
    e.add_bus_route(&[a, a.midpoint(&b), b], 480);
    let violations = validate::validate(e.city().feed.feed());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn added_route_shortens_journeys_from_its_terminus() {
    use staq_repro::gtfs::time::{DayOfWeek, Stime};
    use staq_repro::transit::{Raptor, TransitNetwork};

    let e = engine();
    // Pick the zone farthest from the center: its journey to the center
    // should benefit from a direct express route.
    let center = e.city().cores[0];
    let far = e
        .city()
        .zones
        .iter()
        .max_by(|x, y| x.centroid.dist(&center).partial_cmp(&y.centroid.dist(&center)).unwrap())
        .unwrap()
        .clone();

    let before = {
        let city = e.city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        Raptor::new(&net)
            .query(&far.centroid, &center, Stime::hms(8, 0, 0), DayOfWeek::Tuesday)
            .jt_secs()
    };
    e.add_bus_route(&[far.centroid, far.centroid.midpoint(&center), center], 300);
    let after = {
        let city = e.city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        Raptor::new(&net)
            .query(&far.centroid, &center, Stime::hms(8, 0, 0), DayOfWeek::Tuesday)
            .jt_secs()
    };
    assert!(
        after <= before,
        "a direct 5-minute-headway route must not worsen the journey: {before}s -> {after}s"
    );
    assert!(
        after < before,
        "journey from the periphery should strictly improve: {before}s -> {after}s"
    );
}

#[test]
fn poi_edits_extend_the_poi_set_consistently() {
    let e = engine();
    let n = e.city().pois.len();
    let pos = e.city().cores[0];
    let id = e.add_poi(PoiCategory::JobCenter, pos);
    assert_eq!(e.city().pois.len(), n + 1);
    let poi = &e.city().pois[id.idx()];
    assert_eq!(poi.category, PoiCategory::JobCenter);
    assert_eq!(poi.pos, pos);
    // Zone association must be the nearest centroid.
    let tree = staq_repro::geom::KdTree::build(&e.city().zone_points());
    assert_eq!(poi.zone.0, tree.nearest(&pos).unwrap().item);
}

#[test]
fn queries_work_after_many_edits() {
    let e = engine();
    let c = e.city().cores[0];
    for k in 0..3 {
        let p = c.offset(100.0 * k as f64, -50.0 * k as f64);
        e.add_poi(PoiCategory::VaxCenter, p);
    }
    let side = e.city().config.side_m;
    e.add_bus_route(
        &[
            staq_repro::geom::Point::new(side * 0.1, side * 0.1),
            staq_repro::geom::Point::new(side * 0.5, side * 0.5),
            staq_repro::geom::Point::new(side * 0.9, side * 0.9),
        ],
        600,
    );
    for cat in [PoiCategory::VaxCenter, PoiCategory::School] {
        match e.query(&AccessQuery::MeanAccess, cat) {
            QueryAnswer::MeanAccess { mean_mac, .. } => {
                assert!(mean_mac.is_finite() && mean_mac > 0.0)
            }
            other => panic!("{other:?}"),
        }
    }
}

//! End-to-end: the full SSR pipeline vs naive full labeling on a small city
//! — the headline Table II comparison as a micro-benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use staq_core::{NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_gtfs::time::TimeInterval;
use staq_ml::ModelKind;
use staq_road::IsochroneParams;
use staq_synth::{City, CityConfig, PoiCategory};
use staq_todam::TodamSpec;
use staq_transit::CostKind;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 4, ..Default::default() };
    let artifacts =
        OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("naive_full_labeling", |b| {
        b.iter(|| black_box(NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt)))
    });
    for beta in [0.03, 0.1, 0.3] {
        g.bench_function(format!("ssr_beta_{beta}"), |b| {
            let cfg = PipelineConfig {
                beta,
                model: ModelKind::Ols, // cheapest model isolates the labeling saving
                cost: CostKind::Jt,
                todam: spec.clone(),
                ..Default::default()
            };
            b.iter(|| {
                black_box(SsrPipeline::new(&city, &artifacts, cfg.clone()).run(PoiCategory::School))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

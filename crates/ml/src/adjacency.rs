//! Sparse, normalized zone adjacency for the GNN.
//!
//! Per the paper (§V-A): "the adjacency matrix is calculated using the
//! Euclidean distance between each z_i ∈ Z, and then normalized using the
//! Gaussian thresholded approach" — weights `exp(-d²/σ²)` with small values
//! thresholded to zero, here additionally capped to the nearest `max_deg`
//! neighbours per row to keep the matrix sparse at city scale. Stored
//! symmetrically normalized with self-loops: `Â = D^-1/2 (A + I) D^-1/2`.

use serde::{Deserialize, Serialize};

/// A sparse symmetric-normalized adjacency matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseAdj {
    n: usize,
    /// Per row: `(col, weight)` entries including the self-loop.
    rows: Vec<Vec<(u32, f64)>>,
}

impl SparseAdj {
    /// Builds a Gaussian-thresholded adjacency from 2-d coordinates.
    ///
    /// * `sigma` defaults (when `None`) to the mean of each point's distance
    ///   to its `max_deg`-th neighbour — scale-free across city sizes.
    /// * Entries with weight below `threshold` are dropped; each row keeps
    ///   at most `max_deg` strongest neighbours.
    pub fn gaussian_threshold(
        coords: &[(f64, f64)],
        max_deg: usize,
        threshold: f64,
        sigma: Option<f64>,
    ) -> Self {
        let n = coords.len();
        assert!(max_deg >= 1, "max_deg must be >= 1");
        // Candidate neighbours by brute-force partial sort: n is zone count
        // (thousands), and this runs once per pipeline, so O(n² log k) is
        // acceptable and dependency-free.
        let mut nearest: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        for i in 0..n {
            let (xi, yi) = coords[i];
            let mut ds: Vec<(u32, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let (xj, yj) = coords[j];
                    let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                    (j as u32, d2)
                })
                .collect();
            ds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            ds.truncate(max_deg);
            nearest.push(ds);
        }
        let sigma = sigma.unwrap_or_else(|| {
            let sum: f64 =
                nearest.iter().filter_map(|ds| ds.last()).map(|&(_, d2)| d2.sqrt()).sum();
            (sum / n.max(1) as f64).max(1e-9)
        });

        // Raw weights, symmetrized by union (an edge kept by either side).
        let mut weights: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for &(j, d2) in &nearest[i] {
                let w = (-d2 / (sigma * sigma)).exp();
                if w >= threshold {
                    weights[i].push((j, w));
                    weights[j as usize].push((i as u32, w));
                }
            }
        }
        for row in &mut weights {
            row.sort_unstable_by_key(|&(j, _)| j);
            row.dedup_by_key(|e| e.0);
        }

        // Degree with self-loop, then symmetric normalization.
        let deg: Vec<f64> =
            (0..n).map(|i| 1.0 + weights[i].iter().map(|&(_, w)| w).sum::<f64>()).collect();
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<(u32, f64)> = Vec::with_capacity(weights[i].len() + 1);
            row.push((i as u32, 1.0 / deg[i])); // self-loop: d^-1/2 * 1 * d^-1/2
            for &(j, w) in &weights[i] {
                row.push((j, w / (deg[i].sqrt() * deg[j as usize].sqrt())));
            }
            row.sort_unstable_by_key(|&(j, _)| j);
            rows.push(row);
        }
        SparseAdj { n, rows }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Non-zeros in row `i` (including the self-loop).
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Sparse-dense product `Â · X` where `x` is row-major `n x d`.
    pub fn spmm(&self, x: &crate::linalg::Matrix) -> crate::linalg::Matrix {
        assert_eq!(x.rows(), self.n, "spmm dimension mismatch");
        let mut out = crate::linalg::Matrix::zeros(self.n, x.cols());
        for i in 0..self.n {
            for &(j, w) in &self.rows[i] {
                let src = x.row(j as usize);
                let dst = out.row_mut(i);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn grid_coords(n: usize) -> Vec<(f64, f64)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((i as f64 * 100.0, j as f64 * 100.0));
            }
        }
        v
    }

    #[test]
    fn rows_include_self_loops() {
        let adj = SparseAdj::gaussian_threshold(&grid_coords(3), 4, 1e-4, None);
        for i in 0..adj.n() {
            assert!(adj.row(i).iter().any(|&(j, _)| j as usize == i));
        }
    }

    #[test]
    fn weights_are_positive_and_row_sums_bounded() {
        let adj = SparseAdj::gaussian_threshold(&grid_coords(4), 6, 1e-4, None);
        for i in 0..adj.n() {
            let sum: f64 = adj.row(i).iter().map(|&(_, w)| w).sum();
            assert!(adj.row(i).iter().all(|&(_, w)| w > 0.0));
            // Symmetric normalization bounds the spectral radius by 1; row
            // sums hover near 1 but may exceed it slightly where degrees
            // differ across an edge.
            assert!(sum > 0.0 && sum <= 1.3, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn symmetric_entries() {
        let adj = SparseAdj::gaussian_threshold(&grid_coords(4), 5, 1e-4, None);
        for i in 0..adj.n() {
            for &(j, w) in adj.row(i) {
                let back = adj.row(j as usize).iter().find(|&&(k, _)| k as usize == i);
                let wb = back.expect("missing symmetric entry").1;
                assert!((w - wb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn near_neighbors_weigh_more() {
        let coords = vec![(0.0, 0.0), (100.0, 0.0), (500.0, 0.0)];
        let adj = SparseAdj::gaussian_threshold(&coords, 2, 0.0, Some(300.0));
        let row = adj.row(0);
        let w_near = row.iter().find(|&&(j, _)| j == 1).unwrap().1;
        let w_far = row.iter().find(|&&(j, _)| j == 2).unwrap().1;
        assert!(w_near > w_far);
    }

    #[test]
    fn spmm_identity_behaviour_on_isolated_points() {
        // Points so far apart that all cross weights threshold to zero:
        // Â reduces to I (self-loops of weight 1).
        let coords = vec![(0.0, 0.0), (1e9, 0.0), (0.0, 1e9)];
        let adj = SparseAdj::gaussian_threshold(&coords, 2, 0.5, Some(1.0));
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = adj.spmm(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn spmm_averages_over_neighbors() {
        let adj = SparseAdj::gaussian_threshold(&grid_coords(3), 8, 1e-6, None);
        let x = Matrix::from_vec(9, 1, vec![1.0; 9]);
        let y = adj.spmm(&x);
        // With constant input the output is each row's weight sum: positive
        // and near 1 (see `weights_are_positive_and_row_sums_bounded`).
        for &v in y.data() {
            assert!(v > 0.0 && v <= 1.3);
        }
    }

    #[test]
    fn sparsity_cap_respected() {
        let adj = SparseAdj::gaussian_threshold(&grid_coords(5), 4, 0.0, None);
        for i in 0..adj.n() {
            // Union symmetrization can exceed max_deg slightly, but not wildly.
            assert!(adj.row(i).len() <= 2 * 4 + 1);
        }
    }
}

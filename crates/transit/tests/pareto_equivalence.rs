//! Pareto correctness: the (arrival, transfers) frontier returned by
//! [`Raptor::query_pareto`] must be dominance-correct against exhaustive
//! reference enumeration, and the ≤K-transfers answer must match the best
//! single-criterion answer restricted to ≤K transfers.
//!
//! The reference enumeration sweeps `max_boardings` over 0..=4 with the
//! **unpruned** reference router: the best journey of a `max_boardings = b`
//! network is the optimal arrival with at most `b` rides, i.e. at most
//! `b - 1` transfers — together these points are the complete optimal
//! trade-off set the frontier must reproduce.

use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{mmdijkstra, Journey, ParetoLabel, Raptor, RouterConfig, TransitNetwork};

const SEEDS: [u64; 3] = [7, 42, 1234];

fn od_pairs(city: &City, n: usize) -> Vec<(Point, Point)> {
    (0..n)
        .map(|i| {
            let o = city.zones[(i * 7) % city.zones.len()].centroid;
            let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
            (o, d)
        })
        .collect()
}

fn label_of(j: &Journey) -> ParetoLabel {
    ParetoLabel { arrival: j.arrive, transfers: j.n_transfers() as u8 }
}

/// Every frontier journey is undominated by the exhaustive reference set,
/// and every reference optimum is matched-or-dominated by the frontier.
#[test]
fn frontier_is_dominance_correct_against_reference_enumeration() {
    for seed in SEEDS {
        let city = City::generate(&CityConfig::small(seed));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);

        // Reference enumeration: the unpruned optimum per boarding budget.
        let budget_nets: Vec<TransitNetwork> = (0..=4usize)
            .map(|b| {
                let cfg = RouterConfig { max_boardings: b, ..RouterConfig::default() };
                TransitNetwork::new(&city.road, &city.feed, cfg)
            })
            .collect();

        for day in [DayOfWeek::Tuesday, DayOfWeek::Sunday] {
            for depart in [Stime::hms(7, 30, 0), Stime::hms(17, 45, 0)] {
                for (o, d) in od_pairs(&city, 10) {
                    let frontier = router.query_pareto(&o, &d, depart, day);
                    assert!(!frontier.is_empty(), "frontier always has the walk fallback");

                    // Internal shape: strictly better arrival for every
                    // extra transfer, no duplicates, consistent legs.
                    for w in frontier.windows(2) {
                        assert!(w[0].n_transfers() < w[1].n_transfers());
                        assert!(w[0].arrive > w[1].arrive, "more transfers must buy time");
                    }
                    for j in &frontier {
                        j.check_consistency().unwrap();
                    }

                    let reference: Vec<ParetoLabel> = budget_nets
                        .iter()
                        .map(|n| label_of(&Raptor::reference(n).query(&o, &d, depart, day)))
                        .collect();

                    // (a) no reference point strictly dominates a frontier
                    // journey;
                    for j in &frontier {
                        let jl = label_of(j);
                        for r in &reference {
                            assert!(
                                !(r.dominates(&jl) && *r != jl),
                                "reference {r:?} dominates frontier {jl:?} \
                                 (seed={seed} day={day:?} o={o:?} d={d:?})"
                            );
                        }
                    }
                    // (b) every reference optimum is covered by the frontier.
                    for r in &reference {
                        assert!(
                            frontier.iter().any(|j| label_of(j).dominates(r)),
                            "reference {r:?} not covered by frontier \
                             (seed={seed} day={day:?} o={o:?} d={d:?})"
                        );
                    }
                }
            }
        }
    }
}

/// `query_max_transfers(K)` equals the best single-criterion answer of a
/// router capped at `K + 1` boardings — "fastest with ≤K transfers" is the
/// same journey the dedicated budget network returns.
#[test]
fn max_transfers_matches_budgeted_single_criterion_answer() {
    for seed in SEEDS {
        let city = City::generate(&CityConfig::small(seed));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for k in 0u8..=3 {
            let cfg = RouterConfig { max_boardings: k as usize + 1, ..RouterConfig::default() };
            let budget_net = TransitNetwork::new(&city.road, &city.feed, cfg);
            let budget_router = Raptor::new(&budget_net);
            for (o, d) in od_pairs(&city, 8) {
                let got =
                    router.query_max_transfers(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday, k);
                let want = budget_router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
                assert!(got.n_transfers() <= k as usize);
                assert_eq!(
                    got.arrive, want.arrive,
                    "≤{k}-transfer answer diverged (seed={seed} o={o:?} d={d:?})"
                );
            }
        }
    }
}

/// Cross-check against the time-dependent multimodal Dijkstra baseline:
/// no frontier point arrives before the exact unlimited-transfer optimum,
/// and the transfer-unconstrained end of the frontier ties RAPTOR's own
/// single-criterion answer, which Dijkstra can only match or beat.
#[test]
fn frontier_never_beats_dijkstra_baseline() {
    for seed in [7u64, 42] {
        let city = City::generate(&CityConfig::small(seed));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let router = Raptor::new(&net);
        for (o, d) in od_pairs(&city, 12) {
            let depart = Stime::hms(7, 30, 0);
            let dij = mmdijkstra::earliest_arrival(&net, &o, &d, depart, DayOfWeek::Tuesday);
            let frontier = router.query_pareto(&o, &d, depart, DayOfWeek::Tuesday);
            for j in &frontier {
                assert!(
                    dij <= j.arrive,
                    "frontier point {:?} beat exact dijkstra {dij:?} (seed={seed})",
                    j.arrive
                );
            }
        }
    }
}

/// The unrestricted frontier's best arrival equals the single-criterion
/// query — Pareto mode never loses time, it only adds trade-off points.
#[test]
fn frontier_best_equals_single_criterion_query() {
    let city = City::generate(&CityConfig::small(42));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    for (o, d) in od_pairs(&city, 15) {
        for depart in [Stime::hms(7, 30, 0), Stime::hms(12, 15, 0)] {
            let single = router.query(&o, &d, depart, DayOfWeek::Tuesday);
            let frontier = router.query_pareto(&o, &d, depart, DayOfWeek::Tuesday);
            let best = frontier.iter().map(|j| j.arrive).min().unwrap();
            assert_eq!(best, single.arrive, "o={o:?} d={d:?} depart={depart:?}");
        }
    }
}

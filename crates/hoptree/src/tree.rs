//! The transit-hop tree structure (paper Fig. 2B).

use serde::{Deserialize, Serialize};
use staq_synth::ZoneId;

/// Hop direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Foot leg first, then a ride away from the root zone.
    Outbound,
    /// A ride toward the root zone, foot leg last.
    Inbound,
}

/// A leaf: one zone reachable in a single transit hop, with connectivity
/// data ("route frequency and average journey time").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Leaf {
    pub zone: ZoneId,
    /// Number of departures making this hop within the interval — the
    /// paper's per-leaf counter, a frequency measure.
    pub count: u32,
    /// Sum of observed in-vehicle journey times (seconds) — the paper's
    /// per-leaf journey-time list, folded to (sum, min) because only the
    /// average and best are consumed downstream.
    jt_sum: f64,
    /// Fastest observed in-vehicle time, seconds.
    pub jt_min: f64,
}

impl Leaf {
    /// Average observed in-vehicle journey time, seconds.
    #[inline]
    pub fn jt_avg(&self) -> f64 {
        self.jt_sum / self.count.max(1) as f64
    }

    /// Sum of observed in-vehicle journey times (persistence format).
    #[inline]
    pub fn jt_sum(&self) -> f64 {
        self.jt_sum
    }
}

/// A transit-hop tree: root zone plus one [`Leaf`] per reachable zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopTree {
    pub root: ZoneId,
    pub direction: Direction,
    /// Leaves sorted by zone id (binary-searchable).
    leaves: Vec<Leaf>,
}

impl HopTree {
    /// An empty tree (zone with no transit within reach).
    pub fn empty(root: ZoneId, direction: Direction) -> Self {
        HopTree { root, direction, leaves: Vec::new() }
    }

    /// Builds from an *unsorted* accumulation map of `(zone, count, jt_sum,
    /// jt_min)`.
    pub(crate) fn from_accum(
        root: ZoneId,
        direction: Direction,
        mut accum: Vec<(ZoneId, u32, f64, f64)>,
    ) -> Self {
        accum.sort_unstable_by_key(|e| e.0);
        let leaves = accum
            .into_iter()
            .map(|(zone, count, jt_sum, jt_min)| Leaf { zone, count, jt_sum, jt_min })
            .collect();
        HopTree { root, direction, leaves }
    }

    /// All leaves, ascending by zone id.
    #[inline]
    pub fn leaves(&self) -> &[Leaf] {
        &self.leaves
    }

    /// Number of distinct reachable zones.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Leaf for `zone`, if reachable in one hop.
    pub fn leaf(&self, zone: ZoneId) -> Option<&Leaf> {
        self.leaves.binary_search_by_key(&zone, |l| l.zone).ok().map(|i| &self.leaves[i])
    }

    /// True when `zone` is reachable in one hop.
    #[inline]
    pub fn reaches(&self, zone: ZoneId) -> bool {
        self.leaf(zone).is_some()
    }

    /// Leaves with `count` at least the `q`-quantile count — the
    /// "high-frequency routes" the feature extractor inspects.
    pub fn high_frequency_leaves(&self, q: f64) -> Vec<&Leaf> {
        if self.leaves.is_empty() {
            return Vec::new();
        }
        let mut counts: Vec<u32> = self.leaves.iter().map(|l| l.count).collect();
        counts.sort_unstable();
        let idx = ((counts.len() - 1) as f64 * q.clamp(0.0, 1.0)).ceil() as usize;
        let threshold = counts[idx];
        self.leaves.iter().filter(|l| l.count >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> HopTree {
        HopTree::from_accum(
            ZoneId(0),
            Direction::Outbound,
            vec![
                (ZoneId(5), 4, 2400.0, 500.0),
                (ZoneId(2), 12, 7200.0, 550.0),
                (ZoneId(9), 1, 900.0, 900.0),
            ],
        )
    }

    #[test]
    fn leaves_sorted_and_searchable() {
        let t = tree();
        assert_eq!(t.n_leaves(), 3);
        let zones: Vec<u32> = t.leaves().iter().map(|l| l.zone.0).collect();
        assert_eq!(zones, vec![2, 5, 9]);
        assert!(t.reaches(ZoneId(5)));
        assert!(!t.reaches(ZoneId(7)));
    }

    #[test]
    fn leaf_connectivity_data() {
        let t = tree();
        let l = t.leaf(ZoneId(2)).unwrap();
        assert_eq!(l.count, 12);
        assert!((l.jt_avg() - 600.0).abs() < 1e-12);
        assert_eq!(l.jt_min, 550.0);
    }

    #[test]
    fn high_frequency_selection() {
        let t = tree();
        // Counts are [1, 4, 12]; q = 0.8 ceils to the top count.
        let hf = t.high_frequency_leaves(0.8);
        assert_eq!(hf.len(), 1);
        assert_eq!(hf[0].zone, ZoneId(2));
        // q = 0 keeps everything.
        assert_eq!(t.high_frequency_leaves(0.0).len(), 3);
        // Mid quantile keeps the top two.
        assert_eq!(t.high_frequency_leaves(0.5).len(), 2);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = HopTree::empty(ZoneId(3), Direction::Inbound);
        assert_eq!(t.n_leaves(), 0);
        assert!(!t.reaches(ZoneId(0)));
        assert!(t.high_frequency_leaves(0.5).is_empty());
    }
}

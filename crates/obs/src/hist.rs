//! Log-bucketed latency histogram.
//!
//! Fixed memory (one `u64` per bucket), lock-free to merge, ~4% relative
//! error per bucket — the usual trade for serving-latency percentiles,
//! where tail *shape* matters and sub-percent precision does not.
//!
//! The same bucket math backs two types: [`LatencyHistogram`] (single
//! writer, used by load generators and snapshots) and
//! [`AtomicHistogram`](crate::registry::AtomicHistogram) (many concurrent
//! writers on the serving hot path). They stay mergeable with each other
//! because they share [`bucket`]/[`bucket_value`].

use std::time::Duration;

/// Buckets per power of two of nanoseconds (resolution ≈ 1/16 ≈ 6%,
/// worst-case relative error half that).
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4;
/// Covers 1 ns .. ~2^40 ns (≈ 18 minutes), saturating above.
const MAX_POW: usize = 40;
pub(crate) const N_BUCKETS: usize = MAX_POW * SUB_BUCKETS;

/// Bucket index for a nanosecond sample.
pub(crate) fn bucket(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let pow = 63 - ns.leading_zeros();
    let sub = (ns >> (pow - SUB_BITS)) as usize - SUB_BUCKETS;
    (((pow - SUB_BITS) as usize + 1) * SUB_BUCKETS + sub).min(N_BUCKETS - 1)
}

/// Representative (upper-edge) value of a bucket, inverse of [`bucket`].
pub(crate) fn bucket_value(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let pow = (idx / SUB_BUCKETS - 1) as u32 + SUB_BITS;
    let sub = (idx % SUB_BUCKETS) as u64 + SUB_BUCKETS as u64;
    sub << (pow - SUB_BITS)
}

/// Latency histogram over nanosecond samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; N_BUCKETS], total: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Rebuilds a histogram from sparse `(bucket index, count)` pairs, as
    /// exported by a snapshot. Out-of-range indices saturate into the top
    /// bucket rather than panicking on foreign data.
    pub fn from_sparse(buckets: &[(u32, u64)], sum_ns: u128, max_ns: u64) -> Self {
        let mut h = LatencyHistogram::new();
        for &(idx, c) in buckets {
            h.counts[(idx as usize).min(N_BUCKETS - 1)] += c;
            h.total += c;
        }
        h.sum_ns = sum_ns;
        h.max_ns = max_ns;
        h
    }

    /// Non-empty buckets as `(bucket index, count)` pairs — the compact
    /// form snapshots carry.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact nanosecond sum over all samples.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Arithmetic mean (exact, not bucketed).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Largest sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Percentile in `[0, 100]`, from bucket upper edges.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_value(i).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Accumulates another histogram (e.g. per-thread partials).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// One-line report: `n=... mean=... p50=... p95=... p99=... max=...`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.total,
            fmt_dur(self.mean()),
            fmt_dur(self.percentile(50.0)),
            fmt_dur(self.percentile(95.0)),
            fmt_dur(self.percentile(99.0)),
            fmt_dur(self.max()),
        )
    }
}

/// Human-scaled duration: exact `0ns`, whole ns under 1 µs, then
/// µs / ms / s, with minutes and hours above two minutes.
///
/// Unit thresholds sit where the smaller unit's rounded display would
/// hit `1000.0` of itself, so `999.96µs` prints as `1.00ms` — never the
/// four-integer-digit `1000.0us` the naive `< 1_000_000` cut produces.
/// Span self-times are routinely sub-microsecond, hence the exact-ns
/// band at the bottom; `u64::MAX` ns lands in the hours band instead of
/// an 11-digit seconds figure.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        return "0ns".into();
    }
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    if ns < 999_950 {
        return format!("{:.1}us", ns as f64 / 1e3);
    }
    if ns < 999_995_000 {
        return format!("{:.2}ms", ns as f64 / 1e6);
    }
    let secs = ns as f64 / 1e9;
    if secs < 120.0 {
        return format!("{secs:.3}s");
    }
    let mins = secs / 60.0;
    if mins < 120.0 {
        return format!("{mins:.1}m");
    }
    format!("{:.1}h", mins / 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_value_inverts_bucket_within_resolution() {
        for ns in [0u64, 1, 15, 16, 17, 100, 999, 1000, 123_456, 1 << 30, 1 << 39] {
            let b = bucket(ns);
            let v = bucket_value(b);
            let err = (v as f64 - ns as f64).abs() / (ns.max(1) as f64);
            assert!(err <= 0.07, "ns={ns} bucket={b} value={v} err={err}");
            // Buckets are monotone.
            if ns > 0 {
                assert!(bucket(ns - 1) <= b);
            }
        }
        // Beyond the covered range (~18 min), samples saturate into the
        // top bucket rather than indexing out of bounds.
        assert_eq!(bucket(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0).as_micros() as f64;
        let p99 = h.percentile(99.0).as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.1, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.1, "p99={p99}");
        assert_eq!(h.max(), Duration::from_micros(1000));
        let mean = h.mean().as_micros() as f64;
        assert!((mean - 500.5).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 1..=100u64 {
            let d = Duration::from_nanos(i * i * 37);
            if i % 2 == 0 {
                a.record(d)
            } else {
                b.record(d)
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [10.0, 50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn fmt_dur_boundaries() {
        let f = |ns: u64| fmt_dur(Duration::from_nanos(ns));
        assert_eq!(f(0), "0ns");
        assert_eq!(f(1), "1ns");
        assert_eq!(f(999), "999ns");
        assert_eq!(f(1_000), "1.0us");
        assert_eq!(f(1_500), "1.5us");
        assert_eq!(f(999_949), "999.9us");
        // At the rounding cliff the unit promotes instead of showing
        // "1000.0us".
        assert_eq!(f(999_950), "1.00ms");
        assert_eq!(f(1_000_000), "1.00ms");
        assert_eq!(f(999_994_999), "999.99ms");
        assert_eq!(f(999_995_000), "1.000s");
        assert_eq!(f(1_000_000_000), "1.000s");
        assert_eq!(f(119_999_000_000), "119.999s");
        assert_eq!(f(120_000_000_000), "2.0m");
        assert_eq!(f(7_200_000_000_000), "2.0h");
        // u64::MAX ns is ~585 years; it must stay finite and short.
        let huge = f(u64::MAX);
        assert!(huge.ends_with('h') && huge.len() < 16, "{huge}");
    }

    #[test]
    fn sparse_roundtrip_preserves_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=500u64 {
            h.record(Duration::from_nanos(i * 977));
        }
        let back = LatencyHistogram::from_sparse(&h.nonzero_buckets(), h.sum_ns(), h.max_ns);
        assert_eq!(back.count(), h.count());
        for p in [25.0, 50.0, 95.0, 99.9] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        assert_eq!(back.max(), h.max());
        assert_eq!(back.mean(), h.mean());
    }
}

//! A deliberately tiny HTTP/1.1 listener for `GET /metrics`.
//!
//! Just enough for a Prometheus scraper or `curl`: one thread, one
//! request per connection, close after the response. Anything fancier
//! belongs in a real HTTP stack; the point here is that `serve` and
//! `shard` daemons gain a scrape port (`--metrics-addr`) without a
//! dependency.

use crate::prom;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running scrape listener; [`shutdown`](Self::shutdown) (or
/// drop) stops it.
pub struct ScrapeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScrapeHandle {
    /// The bound scrape address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.thread.take() {
            h.join().expect("metrics listener thread panicked");
        }
    }
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (port 0 picks a free port) and answers `GET /metrics`
/// with the Prometheus rendering of the process's metric registry.
/// Other paths get 404, other methods 405.
pub fn serve_prometheus(addr: &str) -> io::Result<ScrapeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new().name("staq-metrics-http".into()).spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Scrapes are rare and tiny; serve inline rather
                // than spawning per connection.
                let _ = answer(stream);
            }
        })?
    };
    Ok(ScrapeHandle { addr, stop, thread: Some(thread) })
}

/// Reads one request head and writes one response.
fn answer(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the header terminator (or the buffer fills — a request
    // line that big gets whatever we parsed so far).
    while len < buf.len() && !buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => len += n,
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", String::from("method not allowed\n"))
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", prom::render(&crate::registry::snapshot()))
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrapes_metrics_and_rejects_other_paths() {
        static PROBE: crate::registry::Counter =
            crate::registry::Counter::new("test.http.scrape_probe");
        PROBE.add(5);
        let mut handle = serve_prometheus("127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        #[cfg(not(feature = "obs-off"))]
        assert!(ok.contains("staq_test_http_scrape_probe"), "{ok}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        handle.shutdown();
        handle.shutdown(); // idempotent
    }
}

//! Collection strategies.

use crate::strategy::{Strategy, TestRng};
use rand::RngExt;

/// Acceptable size arguments for [`vec`]: an exact length or a half-open
/// range of lengths.
#[derive(Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.0.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! The four-class accessibility classification (paper §III-D).
//!
//! "low MAC and low ACSD receives a class best; high MAC and low ACSD
//! receives a class worst; low MAC and high ACSD receives a class mostly
//! good; high MAC and high ACSD receives a class mostly bad. Low means
//! below average, high means above average."
//!
//! (Note the paper's quirk: "worst" is high MAC with *low* variation — a
//! zone that is reliably badly served.)

use crate::measures::{city_mean, ZoneMeasures};
use serde::{Deserialize, Serialize};

/// The four accessibility classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Low MAC, low ACSD: reliably good access.
    Best,
    /// Low MAC, high ACSD: good on average, schedule-dependent.
    MostlyGood,
    /// High MAC, high ACSD: poor on average, occasionally better.
    MostlyBad,
    /// High MAC, low ACSD: reliably poor access.
    Worst,
}

impl AccessClass {
    /// Classification rule given the city-wide averages.
    pub fn classify(mac: f64, acsd: f64, mean_mac: f64, mean_acsd: f64) -> AccessClass {
        match (mac <= mean_mac, acsd <= mean_acsd) {
            (true, true) => AccessClass::Best,
            (true, false) => AccessClass::MostlyGood,
            (false, false) => AccessClass::MostlyBad,
            (false, true) => AccessClass::Worst,
        }
    }

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            AccessClass::Best => "best",
            AccessClass::MostlyGood => "mostly good",
            AccessClass::MostlyBad => "mostly bad",
            AccessClass::Worst => "worst",
        }
    }
}

impl std::fmt::Display for AccessClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies every zone against the city-wide means **of the given set**.
///
/// When evaluating predictions, pass reference means from the ground truth
/// (`means_from`) so predicted and true classes share a threshold; the paper
/// evaluates classification accuracy this way — class boundaries are a
/// property of the city, not of the model output.
pub fn classify_all(
    measures: &[ZoneMeasures],
    reference_means: Option<(f64, f64)>,
) -> Vec<(staq_synth::ZoneId, AccessClass)> {
    let (mean_mac, mean_acsd) = reference_means.unwrap_or_else(|| means_from(measures));
    measures
        .iter()
        .map(|m| (m.zone, AccessClass::classify(m.mac, m.acsd, mean_mac, mean_acsd)))
        .collect()
}

/// City-wide (mean MAC, mean ACSD) of a measure set.
pub fn means_from(measures: &[ZoneMeasures]) -> (f64, f64) {
    (city_mean(measures, |m| m.mac), city_mean(measures, |m| m.acsd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::ZoneId;

    fn mk(zone: u32, mac: f64, acsd: f64) -> ZoneMeasures {
        ZoneMeasures { zone: ZoneId(zone), mac, acsd }
    }

    #[test]
    fn four_quadrants() {
        assert_eq!(AccessClass::classify(1.0, 1.0, 5.0, 5.0), AccessClass::Best);
        assert_eq!(AccessClass::classify(1.0, 9.0, 5.0, 5.0), AccessClass::MostlyGood);
        assert_eq!(AccessClass::classify(9.0, 9.0, 5.0, 5.0), AccessClass::MostlyBad);
        assert_eq!(AccessClass::classify(9.0, 1.0, 5.0, 5.0), AccessClass::Worst);
    }

    #[test]
    fn boundary_counts_as_low() {
        assert_eq!(AccessClass::classify(5.0, 5.0, 5.0, 5.0), AccessClass::Best);
    }

    #[test]
    fn classify_all_with_own_means() {
        let ms = vec![mk(0, 10.0, 1.0), mk(1, 30.0, 1.0), mk(2, 10.0, 9.0), mk(3, 30.0, 9.0)];
        let classes = classify_all(&ms, None);
        assert_eq!(classes[0].1, AccessClass::Best);
        assert_eq!(classes[1].1, AccessClass::Worst);
        assert_eq!(classes[2].1, AccessClass::MostlyGood);
        assert_eq!(classes[3].1, AccessClass::MostlyBad);
    }

    #[test]
    fn reference_means_shift_classes() {
        let ms = vec![mk(0, 10.0, 1.0)];
        let own = classify_all(&ms, None);
        assert_eq!(own[0].1, AccessClass::Best);
        let reference = classify_all(&ms, Some((5.0, 0.5)));
        assert_eq!(reference[0].1, AccessClass::MostlyBad);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            AccessClass::Best,
            AccessClass::MostlyGood,
            AccessClass::MostlyBad,
            AccessClass::Worst,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}

//! The dynamic access-query engine.
//!
//! The paper's motivation (§I): planners "need to operate in a dynamic
//! environment and test new policy scenarios, such as optimally locating a
//! new school ... or introducing new bus stops to avoid access deserts",
//! which means the TODAM and its artifacts must be recomputable after every
//! spatio-temporal edit — cheaply.
//!
//! [`AccessEngine`] owns a city and its offline artifacts and supports:
//!
//! * answering [`AccessQuery`]s through the SSR pipeline (fast) with result
//!   caching per (category, cost);
//! * **scenario edits** — [`AccessEngine::add_poi`] (no network change: hop
//!   trees stay valid, only that category's TODAM/labels refresh) and
//!   [`AccessEngine::add_bus_route`] (schedule change: the GTFS feed is
//!   extended and only the zones whose walkshed touches a new-route stop
//!   get their hop trees rebuilt).
//!
//! # Concurrency model
//!
//! Every method takes `&self`, so one engine can be shared (`Arc`) across a
//! server's worker pool:
//!
//! * City + artifacts live under a [`RwLock`]: queries take the read path
//!   and run concurrently; scenario edits take the write path.
//! * The per-category result cache is **single-flight**: when N threads ask
//!   for an uncached category at once, exactly one runs the SSR pipeline
//!   while the rest wait on a per-category latch and share the
//!   `Arc<PipelineResult>` it publishes. [`AccessEngine::pipeline_runs`]
//!   counts actual pipeline executions so this is assertable.
//! * Edits mutate state first, then invalidate: each category carries an
//!   epoch, bumped on invalidation. An in-flight compute that started
//!   before an edit still unblocks its waiters (they observe the pre-edit
//!   snapshot, which is linearizable for reads concurrent with the edit)
//!   but is *not* promoted into the cache, so no post-edit reader can see
//!   a stale result.
//!
//! Lock order: the cache mutex is never held across a pipeline run or while
//! acquiring the state lock.

use crate::artifacts::OfflineArtifacts;
use crate::config::PipelineConfig;
use crate::pipeline::{ssr_train_infer, PipelineResult, SsrPipeline};
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};
use staq_access::{AccessQuery, QueryAnswer, ZoneMeasures};
use staq_geom::{KdTree, Point};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::Delta;
use staq_ml::{AnnIndex, KdAnn};
use staq_obs::{AtomicHistogram, Counter};
use staq_synth::{City, Poi, PoiCategory, PoiId, ZoneId};
use staq_todam::{LabelEngine, ZoneStats};
use staq_transit::{
    AccessCost, CostKind, Journey, OverlayStats, Raptor, SharedAccessCache, TransitNetwork,
};
use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Warm reads: a published result served straight from the cache.
static CACHE_HITS: Counter = Counter::new("engine.cache.hits");
/// Cold reads that ran the SSR pipeline.
static CACHE_MISSES: Counter = Counter::new("engine.cache.misses");
/// Reads that joined another thread's in-flight compute (single-flight).
static CACHE_JOINS: Counter = Counter::new("engine.cache.joins");
/// Category invalidations from scenario edits (epoch bumps).
static CACHE_INVALIDATIONS: Counter = Counter::new("engine.cache.invalidations");
/// Approximate-mode answers served by interpolation (no exact compute).
static APPROX_HITS: Counter = Counter::new("engine.approx.hit");
/// Approximate-mode requests answered by the exact path (cold sample
/// store, nearest sample outside the confidence radius, a store dropped
/// by an edit, or a query shape with no interpolated form).
static APPROX_FALLBACKS: Counter = Counter::new("engine.approx.fallback");
/// |interpolated − exact| MAC residual observed on each fallback that
/// could score one, stored ×1000 (a 60 s residual records as 60_000 in
/// the ns-bucketed histogram).
static APPROX_RESIDUAL: AtomicHistogram = AtomicHistogram::new("engine.approx.residual");

/// The mutable world state: what scenario edits rewrite.
struct EngineState {
    city: City,
    artifacts: OfflineArtifacts,
}

/// Latch for one in-flight pipeline run. The computing thread publishes
/// the shared result and wakes every waiter.
struct Flight {
    result: Mutex<Option<Arc<PipelineResult>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight { result: Mutex::new(None), done: Condvar::new() })
    }

    fn publish(&self, result: Arc<PipelineResult>) {
        *self.result.lock() = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Arc<PipelineResult> {
        let mut slot = self.result.lock();
        loop {
            if let Some(r) = slot.as_ref() {
                return Arc::clone(r);
            }
            self.done.wait(&mut slot);
        }
    }
}

/// Cache slot per category: either a published result or a compute in
/// flight that late arrivals should join instead of duplicating.
enum Slot {
    Ready(Arc<PipelineResult>),
    Pending(Arc<Flight>),
}

#[derive(Default)]
struct Cache {
    slots: HashMap<PoiCategory, Slot>,
    /// Bumped on every invalidation of the category; a compute is only
    /// promoted to `Ready` if the epoch it started under is still current.
    epochs: HashMap<PoiCategory, u64>,
}

/// Tuning for the approximate access-query path.
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Acceptable |interpolated − exact| MAC error, in cost-model units
    /// (seconds under JT). Residuals above this shrink the confidence
    /// radius; residuals within it let the radius grow.
    pub error_bound: f64,
    /// Cached samples interpolated over per answer.
    pub k: usize,
    /// Starting confidence radius in meters: a query interpolates only
    /// when its nearest cached sample is at most this far away.
    pub initial_radius_m: f64,
    /// Coordinate quantization grid in meters. Samples are stored at cell
    /// centers, one per cell, so repeat-heavy workloads don't balloon the
    /// index.
    pub quant_m: f64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig { error_bound: 60.0, k: 3, initial_radius_m: 150.0, quant_m: 25.0 }
    }
}

/// Construction-time switches for [`AccessEngine`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// When false (the default, and what [`AccessEngine::new`] uses), one
    /// [`SharedAccessCache`] backs every labeling worker and `plan` call;
    /// when true each router warms a private cache (the pre-sharing
    /// behaviour, kept for A/B measurement).
    pub private_access_caches: bool,
    pub approx: ApproxConfig,
}

/// One cached exact PointAccess answer, stored at a quantized grid cell.
struct ApproxSample {
    zone: ZoneId,
    /// SSR feature row of `zone`; empty when the zone wasn't eligible.
    feat: Vec<f64>,
    /// Euclidean norm of `feat`, precomputed off the interpolation path.
    norm: f64,
    mac: f64,
    acsd: f64,
}

/// Per-category approximate-answer store: an ANN index over quantized
/// sample coordinates plus a self-tuned confidence radius.
///
/// Scenario edits remove the store *eagerly* (under the store lock), so a
/// present store always reflects the current epoch and the interpolation
/// hot path never has to read the engine's epoch table.
struct ApproxState {
    /// Cache epoch the samples were computed under; edits clear stores
    /// eagerly, so this only backstops the re-warm path against an edit
    /// racing a fallback's sample insert.
    epoch: u64,
    index: KdAnn,
    samples: Vec<ApproxSample>,
    cells: HashSet<(i64, i64)>,
    /// Confidence radius in meters, tuned against observed residuals.
    radius: f64,
}

fn cell_of(p: &[f64; 2], cfg: &ApproxConfig) -> (i64, i64) {
    ((p[0] / cfg.quant_m).round() as i64, (p[1] / cfg.quant_m).round() as i64)
}

impl ApproxState {
    fn new(epoch: u64, cfg: &ApproxConfig) -> Self {
        ApproxState {
            epoch,
            index: KdAnn::new(),
            samples: Vec::new(),
            cells: HashSet::new(),
            radius: cfg.initial_radius_m,
        }
    }

    /// Interpolated answer for `q`, or `None` when the nearest sample sits
    /// outside the confidence radius (caller must fall back to exact).
    fn interpolate(&self, q: &[f64; 2], cfg: &ApproxConfig) -> Option<QueryAnswer> {
        let (zone, mac, acsd, d0) = self.blend(q, cfg)?;
        (d0 <= self.radius).then_some(QueryAnswer::PointAccess { zone, mac, acsd })
    }

    /// Inverse-distance-weighted blend over the k nearest samples. The
    /// weight combines squared normalized coordinate distance with the
    /// normalized *feature* distance to the nearest sample's zone, so a
    /// spatially close sample from a structurally different zone (e.g.
    /// across a river with no bridge) contributes less. Returns the
    /// nearest sample's zone, blended (mac, acsd), and the nearest
    /// coordinate distance.
    fn blend(&self, q: &[f64; 2], cfg: &ApproxConfig) -> Option<(ZoneId, f64, f64, f64)> {
        let nn = self.index.nearest(q, cfg.k.max(1));
        let &(id0, d0) = nn.first()?;
        let feat0 = &self.samples[id0].feat;
        let norm0 = self.samples[id0].norm;
        let (mut mac, mut acsd, mut wsum) = (0.0, 0.0, 0.0);
        for &(id, d) in &nn {
            let s = &self.samples[id];
            let dn = d / cfg.quant_m;
            let fd = if !feat0.is_empty() && feat0.len() == s.feat.len() {
                let fd2: f64 = feat0.iter().zip(&s.feat).map(|(a, b)| (a - b) * (a - b)).sum();
                fd2.sqrt() / (norm0 + 1e-9)
            } else {
                0.0
            };
            let w = 1.0 / (0.05 + dn * dn + fd);
            mac += w * s.mac;
            acsd += w * s.acsd;
            wsum += w;
        }
        Some((self.samples[id0].zone, mac / wsum, acsd / wsum, d0))
    }

    /// Feeds one exact answer back into the store: scores the would-be
    /// interpolation against it (residual histogram + radius tuning), then
    /// records the sample at its quantized cell (first write per cell wins;
    /// same-epoch exact answers are deterministic, so later writes would be
    /// identical).
    fn observe(
        &mut self,
        p: [f64; 2],
        zone: ZoneId,
        mac: f64,
        acsd: f64,
        feat: Vec<f64>,
        cfg: &ApproxConfig,
    ) {
        if let Some((_, imac, _, d0)) = self.blend(&p, cfg) {
            let residual = (imac - mac).abs();
            APPROX_RESIDUAL.record(Duration::from_nanos((residual * 1e3) as u64));
            if residual <= cfg.error_bound {
                // The interpolation would have been good at distance d0:
                // extend trust toward it (capped at doubling per step).
                self.radius = (self.radius * 1.2).max(d0.min(self.radius * 2.0));
            } else if d0 <= self.radius * 2.0 {
                // A nearby violation: contract.
                self.radius *= 0.5;
            }
            self.radius = self.radius.clamp(cfg.quant_m, cfg.initial_radius_m * 16.0);
        }
        let cell = cell_of(&p, cfg);
        if self.cells.insert(cell) {
            let qp = [cell.0 as f64 * cfg.quant_m, cell.1 as f64 * cfg.quant_m];
            self.index.push(&qp);
            let norm = feat.iter().map(|v| v * v).sum::<f64>().sqrt();
            self.samples.push(ApproxSample { zone, feat, norm, mac, acsd });
        }
    }
}

/// Read guard over the engine's city. Derefs to [`City`]; holding it blocks
/// scenario edits, so keep it short-lived.
pub struct CityRef<'a> {
    guard: RwLockReadGuard<'a, EngineState>,
}

impl Deref for CityRef<'_> {
    type Target = City;
    fn deref(&self) -> &City {
        &self.guard.city
    }
}

/// A stateful engine over one (mutable) city, shareable across threads.
pub struct AccessEngine {
    config: PipelineConfig,
    /// Zones never change across scenario edits (edits add POIs and routes),
    /// so the zone lookup tree is built once here instead of per `add_poi`.
    zone_tree: KdTree,
    state: RwLock<EngineState>,
    cache: Mutex<Cache>,
    /// Fleet-shared walking-isochrone cache behind the labeling routers and
    /// `plan`; `None` reverts to per-router private caches.
    access_cache: Option<Arc<SharedAccessCache>>,
    approx_cfg: ApproxConfig,
    /// Per-category approximate-answer stores (see [`ApproxState`]).
    approx: Mutex<HashMap<PoiCategory, ApproxState>>,
    pipeline_runs: AtomicU64,
}

impl AccessEngine {
    /// Builds offline artifacts for `city` (the expensive, once-per-interval
    /// step) with default options: shared access cache on.
    pub fn new(city: City, config: PipelineConfig) -> Self {
        Self::with_options(city, config, EngineOptions::default())
    }

    /// [`Self::new`] with explicit [`EngineOptions`].
    pub fn with_options(city: City, config: PipelineConfig, opts: EngineOptions) -> Self {
        config.validate().expect("invalid engine config");
        let artifacts = OfflineArtifacts::build(&city, &config.todam.interval, &config.isochrone);
        let zone_tree = KdTree::build(&city.zone_points());
        let access_cache =
            (!opts.private_access_caches).then(|| Arc::new(SharedAccessCache::new()));
        AccessEngine {
            config,
            zone_tree,
            state: RwLock::new(EngineState { city, artifacts }),
            cache: Mutex::new(Cache::default()),
            access_cache,
            approx_cfg: opts.approx,
            approx: Mutex::new(HashMap::new()),
            pipeline_runs: AtomicU64::new(0),
        }
    }

    /// The fleet-shared access cache, when sharing is enabled. Exposed so
    /// benches and tests can watch its epoch and size.
    pub fn shared_access_cache(&self) -> Option<&Arc<SharedAccessCache>> {
        self.access_cache.as_ref()
    }

    /// The approximate-query tuning in effect.
    pub fn approx_config(&self) -> &ApproxConfig {
        &self.approx_cfg
    }

    /// The current city state, behind a read guard.
    pub fn city(&self) -> CityRef<'_> {
        CityRef { guard: self.state.read() }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of SSR pipeline executions so far. Single-flight means this
    /// advances once per (category, edit-generation), no matter how many
    /// threads demand the result concurrently.
    pub fn pipeline_runs(&self) -> u64 {
        self.pipeline_runs.load(Ordering::Relaxed)
    }

    /// Categories with a published (warm) cache entry.
    pub fn cached_categories(&self) -> Vec<PoiCategory> {
        let cache = self.cache.lock();
        let mut cats: Vec<PoiCategory> = cache
            .slots
            .iter()
            .filter_map(|(c, s)| matches!(s, Slot::Ready(_)).then_some(*c))
            .collect();
        cats.sort_by_key(|c| *c as u32);
        cats
    }

    /// SSR measures for one category, cached until the next scenario edit.
    ///
    /// Concurrent callers for a cold category coalesce into one pipeline
    /// run; everyone gets the same shared result.
    pub fn measures(&self, category: PoiCategory) -> Arc<PipelineResult> {
        let mut span = staq_obs::trace::span("engine.measures");
        // Fast path / join path under the cache lock.
        let (flight, start_epoch) = {
            let mut cache = self.cache.lock();
            match cache.slots.get(&category) {
                Some(Slot::Ready(r)) => {
                    CACHE_HITS.inc();
                    span.attr("cache_hit", 1);
                    return Arc::clone(r);
                }
                Some(Slot::Pending(f)) => {
                    let f = Arc::clone(f);
                    drop(cache);
                    CACHE_JOINS.inc();
                    span.attr("cache_join", 1);
                    return f.wait();
                }
                None => {
                    CACHE_MISSES.inc();
                    span.attr("cache_miss", 1);
                    let epoch = *cache.epochs.entry(category).or_insert(0);
                    let flight = Flight::new();
                    cache.slots.insert(category, Slot::Pending(Arc::clone(&flight)));
                    (flight, epoch)
                }
            }
        };

        // We own the compute. Run the pipeline under the state *read* lock
        // so edits queue behind it but other queries proceed.
        let result = {
            let state = self.state.read();
            let mut pipeline = SsrPipeline::new(&state.city, &state.artifacts, self.config.clone());
            if let Some(cache) = &self.access_cache {
                pipeline = pipeline.with_access_cache(Arc::clone(cache));
            }
            Arc::new(pipeline.run(category))
        };
        self.pipeline_runs.fetch_add(1, Ordering::Relaxed);
        flight.publish(Arc::clone(&result));

        // Promote to Ready only if no edit invalidated us mid-run.
        let mut cache = self.cache.lock();
        let current = cache.epochs.get(&category).copied().unwrap_or(0);
        let ours = matches!(
            cache.slots.get(&category),
            Some(Slot::Pending(f)) if Arc::ptr_eq(f, &flight)
        );
        if ours {
            if current == start_epoch {
                cache.slots.insert(category, Slot::Ready(Arc::clone(&result)));
            } else {
                cache.slots.remove(&category);
            }
        }
        result
    }

    /// Answers an access query for one category via SSR measures.
    pub fn query(&self, q: &AccessQuery, category: PoiCategory) -> QueryAnswer {
        let predicted = self.measures(category);
        let state = self.state.read();
        q.answer(&predicted.predicted, &state.city.zones)
    }

    /// Answers `q` in **approximate mode**: a [`AccessQuery::PointAccess`]
    /// query whose nearest cached exact answer lies within the confidence
    /// radius is interpolated instead of resolved exactly — no measure-set
    /// scan, no state lock. Everything else (cold sample store, nearest
    /// sample too far, a store dropped by a scenario edit, or a query
    /// shape with no interpolated form) falls back to [`Self::query`], and
    /// each exact PointAccess answer produced that way re-warms the store.
    ///
    /// Counted by `engine.approx.hit` / `engine.approx.fallback`; residuals
    /// of would-be interpolations land in `engine.approx.residual`.
    pub fn query_approx(&self, q: &AccessQuery, category: PoiCategory) -> QueryAnswer {
        let mut span = staq_obs::trace::span("engine.approx");
        let (x, y) = match q {
            AccessQuery::PointAccess { x, y } => (*x, *y),
            _ => {
                APPROX_FALLBACKS.inc();
                span.attr("fallback", 1);
                return self.query(q, category);
            }
        };

        // Edits clear sample stores eagerly, so a present store is always
        // current — the hot path takes one lock and reads no epochs.
        {
            let approx = self.approx.lock();
            if let Some(st) = approx.get(&category) {
                if let Some(ans) = st.interpolate(&[x, y], &self.approx_cfg) {
                    APPROX_HITS.inc();
                    span.attr("hit", 1);
                    return ans;
                }
            }
        }

        // Exact fallback, then feed the sample store so the next nearby
        // query can interpolate. The epoch is captured *before* the exact
        // compute so an edit landing mid-compute voids the sample.
        APPROX_FALLBACKS.inc();
        span.attr("fallback", 1);
        let epoch = self.category_epoch(category);
        let predicted = self.measures(category);
        let answer = {
            let state = self.state.read();
            q.answer(&predicted.predicted, &state.city.zones)
        };
        if let QueryAnswer::PointAccess { zone, mac, acsd } = answer {
            if mac.is_finite() {
                self.record_approx_sample(category, epoch, [x, y], zone, mac, acsd, &predicted);
            }
        }
        answer
    }

    /// [`Self::measures`] with approximate-mode accounting: a warm cached
    /// result counts as an approx hit (the memoized exact result is the
    /// zero-residual best case of interpolation), anything that must run
    /// or join a pipeline counts as a fallback — which is what makes
    /// post-edit staleness observable through `engine.approx.fallback`.
    pub fn measures_approx(&self, category: PoiCategory) -> Arc<PipelineResult> {
        let mut span = staq_obs::trace::span("engine.approx");
        let warm = matches!(self.cache.lock().slots.get(&category), Some(Slot::Ready(_)));
        if warm {
            APPROX_HITS.inc();
            span.attr("hit", 1);
        } else {
            APPROX_FALLBACKS.inc();
            span.attr("fallback", 1);
        }
        self.measures(category)
    }

    /// Current invalidation epoch of `category`'s result cache.
    fn category_epoch(&self, category: PoiCategory) -> u64 {
        self.cache.lock().epochs.get(&category).copied().unwrap_or(0)
    }

    /// Feeds one exact PointAccess answer into the approximate store,
    /// unless an edit landed since the query began (stale samples must
    /// never seed a fresh-epoch store). The epoch re-check happens *while
    /// holding the store lock*: edits clear stores under that same lock
    /// after bumping the epoch, so either this insert sees the bump and
    /// aborts, or the edit's clear sweeps the insert away — a stale sample
    /// can never survive into a current store.
    #[allow(clippy::too_many_arguments)]
    fn record_approx_sample(
        &self,
        category: PoiCategory,
        epoch: u64,
        point: [f64; 2],
        zone: ZoneId,
        mac: f64,
        acsd: f64,
        predicted: &PipelineResult,
    ) {
        let feat = predicted.feature_row(zone).map(<[f64]>::to_vec).unwrap_or_default();
        let cfg = &self.approx_cfg;
        let mut approx = self.approx.lock();
        if self.category_epoch(category) != epoch {
            return;
        }
        let st = approx.entry(category).or_insert_with(|| ApproxState::new(epoch, cfg));
        if st.epoch != epoch {
            *st = ApproxState::new(epoch, cfg);
        }
        st.observe(point, zone, mac, acsd, feat, cfg);
    }

    /// Answers `q` against an externally supplied measure vector (e.g. one
    /// scenario's [`Self::what_if`] outcome) using this engine's zone set
    /// for demographic weights.
    pub fn answer_with(&self, measures: &[ZoneMeasures], q: &AccessQuery) -> QueryAnswer {
        let state = self.state.read();
        q.answer(measures, &state.city.zones)
    }

    /// Adds a POI (e.g. a candidate vaccination site). No transit change:
    /// only the category's cached result is invalidated. Returns the new
    /// POI's id.
    pub fn add_poi(&self, category: PoiCategory, pos: Point) -> PoiId {
        let zone = ZoneId(self.zone_tree.nearest(&pos).expect("city has zones").item);
        let id = {
            let mut state = self.state.write();
            let id = PoiId(state.city.pois.len() as u32);
            state.city.pois.push(Poi { id, category, pos, zone });
            id
        };
        // Invalidate after the state change so no reader can cache the
        // pre-edit world under the post-edit epoch.
        {
            let mut cache = self.cache.lock();
            *cache.epochs.entry(category).or_insert(0) += 1;
            cache.slots.remove(&category);
            CACHE_INVALIDATIONS.inc();
        }
        // Eager approx-store drop (see `ApproxState`): a present store must
        // always be current. After the epoch bump above, a racing sample
        // insert either sees the bump or is swept away here.
        self.approx.lock().remove(&category);
        id
    }

    /// Adds a new bus route calling at `stops_at` (in order) with the given
    /// peak headway, weekdays only. Returns the number of zones whose hop
    /// trees were incrementally rebuilt.
    ///
    /// Compatibility wrapper over [`apply_delta`](Self::apply_delta) with
    /// [`Delta::AddRoute`] — serve/shard and the streaming path share one
    /// edit implementation. Panics on fewer than two stops (the historical
    /// contract; the delta path returns `Err` instead).
    pub fn add_bus_route(&self, stops_at: &[Point], peak_headway_s: u32) -> usize {
        assert!(stops_at.len() >= 2, "a route needs at least two stops");
        self.apply_delta(&Delta::AddRoute { stops: stops_at.to_vec(), headway_s: peak_headway_s })
            .expect("add_bus_route delta rejected")
            .zones_rebuilt
    }

    /// Applies one streaming delta to the live world, **incrementally**: the
    /// feed index is mutated in place (no rebuild), then exactly the state
    /// the delta invalidates is refreshed.
    ///
    /// Invalidation matrix:
    ///
    /// * `ServiceAlert` — advisory; nothing structural changed, no caches
    ///   touched, no locks taken.
    /// * All structural deltas — hop trees are rebuilt only for zones whose
    ///   stored walking isochrone contains a touched stop (crow-flies
    ///   pre-filter, exact isochrone test), and every category's result
    ///   epoch is bumped so neither cached nor in-flight results survive.
    ///
    /// Rejected deltas (unknown ids, bad geometry) leave the world
    /// untouched.
    pub fn apply_delta(&self, delta: &Delta) -> Result<DeltaApplied, String> {
        let mut span = staq_obs::trace::span("engine.apply_delta");
        span.attr("structural", delta.is_structural() as u64);
        if !delta.is_structural() {
            return Ok(DeltaApplied { structural: false, zones_rebuilt: 0, invalidated: 0 });
        }
        let zones_rebuilt = {
            let mut state = self.state.write();
            let state = &mut *state;
            let bus_speed = state.city.config.bus_speed_mps;
            let outcome = state.city.feed.apply_delta(delta, bus_speed)?;

            // Incremental hop-tree rebuild: zones whose walkshed reaches a
            // touched stop (crow-flies pre-filter by max walking radius,
            // exact test via the stored isochrone).
            let radius = self.config.isochrone.max_radius_m();
            let mut affected: Vec<ZoneId> = Vec::new();
            for z in 0..state.city.n_zones() {
                let zid = ZoneId(z as u32);
                let iso = state.artifacts.store.isochrone(zid);
                let touched = outcome.touched_stops.iter().any(|p| {
                    state.city.zone_centroid(zid).dist(p) <= radius * 1.5 && iso.contains(p)
                });
                if touched {
                    affected.push(zid);
                }
            }
            state.artifacts.store.rebuild_zones(&state.city, &affected);
            affected.len()
        };
        // Schedule changed: every category is stale. Bump all known epochs
        // so no in-flight compute gets promoted either.
        let invalidated = {
            let mut cache = self.cache.lock();
            let mut invalidated = 0usize;
            for epoch in cache.epochs.values_mut() {
                *epoch += 1;
                invalidated += 1;
                CACHE_INVALIDATIONS.inc();
            }
            cache.slots.clear();
            invalidated
        };
        // The network changed under the shared isochrone cache too: bump its
        // epoch so readers refresh and stale in-flight inserts are dropped.
        if let Some(cache) = &self.access_cache {
            cache.invalidate();
        }
        // Approximate sample stores are dropped eagerly so the query hot
        // path can trust any store it finds (see `ApproxState`).
        self.approx.lock().clear();
        Ok(DeltaApplied { structural: true, zones_rebuilt, invalidated })
    }

    /// Evaluates `scenarios` (each a list of deltas) against the current
    /// world for one category, side by side, **without mutating anything**.
    ///
    /// One immutable base is shared by all scenarios: the cached base
    /// measures supply the TODAM, the L/U split, and the feature matrices
    /// (demand is POI-driven, so the TODAM is exact under schedule deltas;
    /// reusing base hop-tree features is the documented approximation), and
    /// one base transit network supplies copy-on-write overlays. Per
    /// scenario, only labeling `L` over the overlay and retraining the SSR
    /// model run — the expensive artifacts are never cloned, which is what
    /// makes K scenarios cheaper than K engines.
    ///
    /// An empty scenario reproduces the base measures bit-for-bit.
    pub fn what_if(
        &self,
        category: PoiCategory,
        scenarios: &[Vec<Delta>],
    ) -> Result<Vec<ScenarioOutcome>, String> {
        let mut span = staq_obs::trace::span("engine.what_if");
        span.attr("scenarios", scenarios.len() as u64);
        let base = self.measures(category);
        let state = self.state.read();
        let bus_speed = state.city.config.bus_speed_mps;
        let net = TransitNetwork::with_defaults(&state.city.road, &state.city.feed);
        let mut out = Vec::with_capacity(scenarios.len());
        for deltas in scenarios {
            let (overlay, overlay_stats) = net.overlay(deltas, bus_speed)?;
            let cost_model = match self.config.cost {
                CostKind::Jt => AccessCost::jt(),
                CostKind::Gac => AccessCost::gac(),
            };
            let labeler = LabelEngine::with_network(
                &state.city,
                overlay,
                cost_model,
                self.config.todam.interval.clone(),
            );
            let labeled_stats: Vec<ZoneStats> = labeler
                .label_zones(&base.matrix, &base.labeled)
                .into_iter()
                .map(|s| s.expect("base-labeled zone must relabel under the overlay"))
                .collect();
            let predicted = ssr_train_infer(
                &state.city,
                &self.config,
                &base.labeled,
                &base.unlabeled,
                &base.x_labeled,
                &base.x_unlabeled,
                &labeled_stats,
            );
            out.push(ScenarioOutcome { predicted, labeled_stats, overlay: overlay_stats });
        }
        Ok(out)
    }

    /// Point-to-point journey planning against the live timetable (the
    /// state every applied delta has already rewritten). With a transfer
    /// cap the answer is the single fastest journey using at most
    /// `max_transfers` transfers; without one it is the whole Pareto
    /// (arrival, transfers) frontier, transfers ascending.
    pub fn plan(
        &self,
        origin: Point,
        dest: Point,
        depart: Stime,
        day: DayOfWeek,
        max_transfers: Option<u8>,
    ) -> Vec<Journey> {
        let mut span = staq_obs::trace::span("engine.plan");
        let state = self.state.read();
        let net = TransitNetwork::with_defaults(&state.city.road, &state.city.feed);
        let router = match &self.access_cache {
            Some(cache) => Raptor::with_shared_cache(&net, cache),
            None => Raptor::new(&net),
        };
        let journeys = match max_transfers {
            Some(k) => vec![router.query_max_transfers(&origin, &dest, depart, day, k)],
            None => router.query_pareto(&origin, &dest, depart, day),
        };
        span.attr("journeys", journeys.len() as u64);
        journeys
    }
}

/// What [`AccessEngine::apply_delta`] did — the invalidation receipt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaApplied {
    /// False for advisory deltas (nothing below changed).
    pub structural: bool,
    /// Zones whose hop trees were incrementally rebuilt.
    pub zones_rebuilt: usize,
    /// Categories whose cached/in-flight results were invalidated.
    pub invalidated: usize,
}

/// One counterfactual scenario's evaluation from [`AccessEngine::what_if`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Access measures per zone under the scenario (same zone set as the
    /// base measures: truth for `L`, inference for `U`).
    pub predicted: Vec<ZoneMeasures>,
    /// Counterfactual ground-truth stats for the labeled zones.
    pub labeled_stats: Vec<ZoneStats>,
    /// What the copy-on-write overlay materialized.
    pub overlay: OverlayStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_ml::ModelKind;
    use staq_synth::CityConfig;
    use staq_todam::TodamSpec;

    fn engine() -> AccessEngine {
        let city = City::generate(&CityConfig::small(42));
        let config = PipelineConfig {
            beta: 0.25,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        AccessEngine::new(city, config)
    }

    #[test]
    fn queries_answer_from_ssr_measures() {
        let e = engine();
        let a = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        match a {
            QueryAnswer::MeanAccess { mean_mac, n_zones, .. } => {
                assert!(mean_mac > 0.0);
                assert!(n_zones > 0);
            }
            other => panic!("{other:?}"),
        }
        // Second call hits the cache: the very same result object, and no
        // extra pipeline execution.
        let r1 = e.measures(PoiCategory::School);
        let r2 = e.measures(PoiCategory::School);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(e.pipeline_runs(), 1);
    }

    #[test]
    fn add_poi_invalidates_only_its_category() {
        let e = engine();
        let _ = e.measures(PoiCategory::School);
        let _ = e.measures(PoiCategory::Hospital);
        assert_eq!(e.cached_categories().len(), 2);
        let center = e.city().cores[0];
        let id = e.add_poi(PoiCategory::School, center);
        assert_eq!(id.idx(), e.city().pois.len() - 1);
        assert_eq!(e.cached_categories(), vec![PoiCategory::Hospital]);
    }

    #[test]
    fn concurrent_cold_reads_run_pipeline_once() {
        let e = Arc::new(engine());
        let results: Vec<Arc<PipelineResult>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let e = Arc::clone(&e);
                    scope.spawn(move |_| e.measures(PoiCategory::School))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(e.pipeline_runs(), 1, "single-flight must coalesce cold reads");
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all callers share one result");
        }
    }

    #[test]
    fn adding_a_poi_improves_nearby_access() {
        // Causal check against *ground truth* (SSR predictions add model
        // noise that could mask a small improvement): a hospital placed at
        // the worst-served zone lowers mean access cost.
        use crate::naive::NaiveResult;
        use staq_transit::CostKind;

        let e = engine();
        let spec = e.config().todam.clone();
        let before = NaiveResult::compute(&e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst =
            *before.measures.iter().max_by(|a, b| a.mac.partial_cmp(&b.mac).unwrap()).unwrap();
        let pos = e.city().zone_centroid(worst.zone);
        e.add_poi(PoiCategory::Hospital, pos);
        let after = NaiveResult::compute(&e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst_after =
            after.measures.iter().find(|m| m.zone == worst.zone).expect("worst zone still labeled");
        // Note: the *city mean* MAC may legitimately rise — under gravity
        // trip redistribution a new attractor pulls trips toward itself from
        // zones it is far from. The zone that received the hospital,
        // however, must improve: its nearest hospital is now at distance
        // ~0 and dominates its attractiveness.
        assert!(
            worst_after.mac < worst.mac,
            "hospital at the worst zone must improve that zone: {} -> {}",
            worst.mac,
            worst_after.mac
        );
    }

    #[test]
    fn classification_query_covers_predicted_zones() {
        let e = engine();
        let n = e.measures(PoiCategory::School).predicted.len();
        match e.query(&AccessQuery::Classification, PoiCategory::School) {
            QueryAnswer::Classification(classes) => {
                assert_eq!(classes.len(), n);
                // All four quadrants exist in a heterogeneous city... at
                // least two distinct classes must appear.
                let distinct: std::collections::HashSet<_> =
                    classes.iter().map(|(_, c)| c.label()).collect();
                assert!(distinct.len() >= 2, "degenerate classification {distinct:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn add_bus_route_rebuilds_affected_zones() {
        let e = engine();
        let _ = e.measures(PoiCategory::School);
        let (a, b) = {
            let city = e.city();
            (city.zones[0].centroid, city.cores[0])
        };
        let mid = a.midpoint(&b);
        let n = e.add_bus_route(&[a, mid, b], 600);
        assert!(n > 0, "route through the city must touch some walkshed");
        assert!(e.cached_categories().is_empty(), "schedule edits invalidate all caches");
        // Engine still answers queries afterwards.
        let ans = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        assert!(matches!(ans, QueryAnswer::MeanAccess { .. }));
    }

    #[test]
    #[should_panic(expected = "at least two stops")]
    fn route_needs_two_stops() {
        let e = engine();
        e.add_bus_route(&[Point::new(0.0, 0.0)], 600);
    }

    #[test]
    fn shared_cache_backs_labeling_and_fills_on_measures() {
        let e = engine();
        let shared = Arc::clone(e.shared_access_cache().expect("shared cache on by default"));
        assert!(shared.is_empty());
        let _ = e.measures(PoiCategory::School);
        assert!(!shared.is_empty(), "labeling must publish isochrones into the shared cache");
    }

    #[test]
    fn shared_and_private_cache_measures_are_bit_identical() {
        let city = City::generate(&CityConfig::small(43));
        let config = PipelineConfig {
            beta: 0.25,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        let shared = AccessEngine::new(city.clone(), config.clone());
        let private = AccessEngine::with_options(
            city,
            config,
            EngineOptions { private_access_caches: true, ..Default::default() },
        );
        assert!(private.shared_access_cache().is_none());
        let a = shared.measures(PoiCategory::School);
        let b = private.measures(PoiCategory::School);
        assert_eq!(a.predicted, b.predicted, "cache sharing must not change any answer");
        assert_eq!(a.labeled, b.labeled);
        assert_eq!(a.labeled_stats, b.labeled_stats);
    }

    #[test]
    fn approx_point_query_interpolates_repeats_within_error_bound() {
        let e = engine();
        let p = {
            let city = e.city();
            city.zones[3].centroid
        };
        let q = AccessQuery::PointAccess { x: p.x + 2.0, y: p.y - 2.0 };
        let exact = match e.query(&q, PoiCategory::School) {
            QueryAnswer::PointAccess { zone, mac, .. } => (zone, mac),
            other => panic!("{other:?}"),
        };
        // First approx call is a fallback (cold store) that seeds a sample;
        // it must return the exact answer.
        let first = e.query_approx(&q, PoiCategory::School);
        match first {
            QueryAnswer::PointAccess { zone, mac, .. } => {
                assert_eq!((zone, mac), exact, "fallback path must be exact");
            }
            other => panic!("{other:?}"),
        }
        let runs = e.pipeline_runs();
        // The repeat lands within the confidence radius of the seeded
        // sample: interpolated, no pipeline work, within the error bound.
        let second = e.query_approx(&q, PoiCategory::School);
        assert_eq!(e.pipeline_runs(), runs);
        match second {
            QueryAnswer::PointAccess { zone, mac, .. } => {
                assert_eq!(zone, exact.0, "nearest sample shares the zone");
                assert!(
                    (mac - exact.1).abs() <= e.approx_config().error_bound,
                    "interpolated {} vs exact {} exceeds the error bound",
                    mac,
                    exact.1
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn approx_falls_back_to_exact_after_a_structural_edit() {
        let e = engine();
        let (p, a, b) = {
            let city = e.city();
            (city.zones[1].centroid, city.zones[0].centroid, city.cores[0])
        };
        let q = AccessQuery::PointAccess { x: p.x, y: p.y };
        let _ = e.query_approx(&q, PoiCategory::School); // seed
        let _ = e.query_approx(&q, PoiCategory::School); // warm hit
        let shared_epoch = e.shared_access_cache().unwrap().epoch();

        let mid = a.midpoint(&b);
        e.add_bus_route(&[a, mid, b], 600);
        assert!(
            e.shared_access_cache().unwrap().epoch() > shared_epoch,
            "structural edits must bump the shared access-cache epoch"
        );

        // The store's epoch is stale: the same point must recompute exactly
        // (one more pipeline run) instead of serving the old interpolation.
        let runs = e.pipeline_runs();
        let post = e.query_approx(&q, PoiCategory::School);
        assert_eq!(e.pipeline_runs(), runs + 1, "stale approx store must fall back to exact");
        let exact = e.query(&q, PoiCategory::School);
        assert_eq!(post, exact, "post-edit fallback answer is the exact answer");
    }
}

//! End-to-end tests of the live streaming surface over real loopback
//! TCP: server-assigned delta sequence numbers, idempotent replay,
//! `SeqGap` signalling, catch-up batches converging a lagging replica
//! onto a leader's measures bit-for-bit, and what-if scenarios whose
//! answers match the same deltas committed for real.

use staq_gtfs::model::{RouteId, TripId};
use staq_gtfs::Delta;
use staq_repro::prelude::*;
use staq_serve::codec::ErrorCode;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ClientError, ServerConfig, ServerHandle};

fn start_server(seed: u64) -> ServerHandle {
    let engine = CityPreset::Test.engine(0.05, seed);
    staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, ..Default::default() },
    )
    .expect("bind loopback server")
}

fn server_error(e: ClientError) -> (ErrorCode, String) {
    match e {
        ClientError::Server { code, message } => (code, message),
        other => panic!("expected a server error frame, got {other:?}"),
    }
}

#[test]
fn deltas_stream_with_server_assigned_sequence_numbers() {
    let mut server = start_server(42);
    let mut c = Client::connect(server.addr()).expect("connect");

    // seq 0 asks the server to assign the next sequence number.
    let d1 = Delta::TripDelay { trip: TripId(0), delay_secs: 300 };
    let ack = c.apply_delta(0, &d1).expect("first delta");
    assert_eq!(ack.seq, 1);
    assert!(!ack.replayed);

    let d2 = Delta::ServiceAlert { route: RouteId(0), message: "diversion".into() };
    let ack = c.apply_delta(0, &d2).expect("second delta");
    assert_eq!(ack.seq, 2);
    assert!(!ack.replayed);

    // Resending an already-sequenced delta is acked idempotently, not
    // re-applied.
    let ack = c.apply_delta(2, &d2).expect("replay");
    assert_eq!(ack.seq, 2);
    assert!(ack.replayed, "an already-seen sequence number must be a no-op");

    // Jumping past the log's head is a gap the client must backfill.
    let (code, message) = server_error(c.apply_delta(9, &d1).expect_err("gap"));
    assert_eq!(code, ErrorCode::SeqGap);
    assert!(message.contains('2') && message.contains('9'), "gap names both seqs: {message}");

    // The connection survives the error frame.
    c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("query after gap");
    server.shutdown();
}

#[test]
fn a_structural_delta_changes_served_measures() {
    let mut server = start_server(42);
    let mut c = Client::connect(server.addr()).expect("connect");

    let before = c.measures(PoiCategory::School).expect("cold measures");
    let ack =
        c.apply_delta(0, &Delta::RouteRemove { route: RouteId(0) }).expect("remove a whole route");
    assert!(ack.zones_rebuilt > 0, "a structural delta must rebuild zones");

    let after = c.measures(PoiCategory::School).expect("measures after removal");
    assert_eq!(before.len(), after.len(), "the zone set is untouched");
    assert_ne!(before, after, "losing a route must move access measures");
    server.shutdown();
}

#[test]
fn a_delta_batch_converges_a_lagging_replica_bit_for_bit() {
    let mut leader = start_server(42);
    let mut replica = start_server(42); // same seed → identical city
    let mut lc = Client::connect(leader.addr()).expect("connect leader");
    let mut rc = Client::connect(replica.addr()).expect("connect replica");

    let deltas = vec![
        Delta::TripDelay { trip: TripId(0), delay_secs: 240 },
        Delta::TripCancel { trip: TripId(1) },
        Delta::RouteRemove { route: RouteId(1) },
    ];
    for d in &deltas {
        lc.apply_delta(0, d).expect("leader applies live");
    }

    // The replica receives the same history as one explicitly-sequenced
    // batch.
    let last = rc.delta_batch(1, &deltas).expect("replica catches up");
    assert_eq!(last, 3);

    // Replaying the batch is harmless: the log already covers it.
    let last = rc.delta_batch(1, &deltas).expect("idempotent replay");
    assert_eq!(last, 3);

    // A batch starting past the head is refused with the gap code.
    let (code, _) = server_error(rc.delta_batch(7, &deltas).expect_err("gap batch"));
    assert_eq!(code, ErrorCode::SeqGap);

    // Incremental application and batch replay of the same log are
    // bit-identical, across every category the deltas touched.
    for category in [PoiCategory::School, PoiCategory::Hospital] {
        let on_leader = lc.measures(category).expect("leader measures");
        let on_replica = rc.measures(category).expect("replica measures");
        assert_eq!(on_leader, on_replica, "{category:?} measures diverged");
    }
    leader.shutdown();
    replica.shutdown();
}

#[test]
fn what_if_answers_match_the_committed_future() {
    let mut server = start_server(42);
    let mut c = Client::connect(server.addr()).expect("connect");

    let cut = Delta::RouteRemove { route: RouteId(0) };
    let query = AccessQuery::MeanAccess;
    let base = c.query(&query, PoiCategory::School).expect("base answer");

    // Two scenarios side by side: "nothing changes" and "route 0 gone".
    let scenarios = vec![vec![], vec![cut.clone()]];
    let answers = c.what_if(PoiCategory::School, &scenarios, &query).expect("what-if");
    assert_eq!(answers.len(), 2, "one answer per scenario, in request order");
    assert_eq!(answers[0].answer, base, "the empty scenario is the present");
    assert_ne!(answers[1].answer, base, "the counterfactual must differ");
    assert!(answers[1].overlay_bytes > 0, "a structural overlay holds rebuilt state");

    // The base engine is untouched by evaluating scenarios.
    assert_eq!(c.query(&query, PoiCategory::School).expect("still base"), base);

    // Committing the scenario's delta for real lands close to the
    // what-if prediction. Exact equality is not promised — what-if reuses
    // the base hop-tree features as its documented approximation — but
    // both worlds lost the same route, so both must move below the base
    // and agree to within a few percent.
    c.apply_delta(0, &cut).expect("commit the cut");
    let committed = c.query(&query, PoiCategory::School).expect("committed answer");
    let mac = |a: &QueryAnswer| match a {
        QueryAnswer::MeanAccess { mean_mac, .. } => *mean_mac,
        other => panic!("{other:?}"),
    };
    let (b, predicted, actual) = (mac(&base), mac(&answers[1].answer), mac(&committed));
    assert!(predicted < b, "prediction must see the lost route ({predicted} vs base {b})");
    assert!(actual < b, "committed world must see the lost route ({actual} vs base {b})");
    let rel = (predicted - actual).abs() / actual;
    assert!(rel < 0.10, "what-if within 10% of the committed future, off by {rel:.3}");
    server.shutdown();
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn approx_answers_fall_back_to_exact_after_a_delta_until_rewarmed() {
    let mut server = start_server(42);
    let mut c = Client::connect(server.addr()).expect("connect");
    let counter = |m: &staq_obs::MetricsSnapshot, name: &str| m.counter(name).unwrap_or(0);

    let q = AccessQuery::PointAccess { x: 400.0, y: 300.0 };
    let cat = PoiCategory::School;
    let exact = c.query(&q, cat).expect("exact point answer");

    // Cold approx store: the first approximate query must fall back to the
    // exact path (and seed an interpolation sample from its answer).
    let baseline = c.stats().expect("baseline").metrics;
    let first = c.query_approx(&q, cat).expect("cold approx");
    assert_eq!(first, exact, "the fallback path IS the exact path");
    let warmed = c.stats().expect("after cold approx").metrics;
    assert!(
        counter(&warmed, "engine.approx.fallback") > counter(&baseline, "engine.approx.fallback"),
        "a cold approximate query is a counted fallback"
    );

    // Re-asking at the same point interpolates from the seeded sample:
    // same zone, value within the engine's error bound, hit counted.
    let (zone, mac) = match exact {
        QueryAnswer::PointAccess { zone, mac, .. } => (zone, mac),
        other => panic!("{other:?}"),
    };
    let second = c.query_approx(&q, cat).expect("warm approx");
    match second {
        QueryAnswer::PointAccess { zone: z2, mac: m2, .. } => {
            assert_eq!(z2, zone, "interpolation stays in the exact answer's zone");
            assert!((m2 - mac).abs() <= 60.0, "within the error bound: {m2} vs {mac}");
        }
        other => panic!("{other:?}"),
    }
    let hit = c.stats().expect("after warm approx").metrics;
    assert!(
        counter(&hit, "engine.approx.hit") > counter(&warmed, "engine.approx.hit"),
        "a warm approximate query is a counted hit"
    );

    // A structural delta bumps the epoch: every approximate answer falls
    // back to exact until the store is re-warmed, and the fallback counter
    // says so.
    c.apply_delta(0, &Delta::TripDelay { trip: TripId(0), delay_secs: 300 }).expect("delta");
    let post_delta = c.stats().expect("post delta").metrics;
    let after = c.query_approx(&q, cat).expect("approx after delta");
    let exact_after = c.query(&q, cat).expect("exact after delta");
    assert_eq!(after, exact_after, "stale samples are never served: fallback answers exactly");
    let fell_back = c.stats().expect("after stale approx").metrics;
    assert!(
        counter(&fell_back, "engine.approx.fallback")
            > counter(&post_delta, "engine.approx.fallback"),
        "engine.approx.fallback must count the post-delta miss"
    );

    // That fallback re-warmed the store under the new epoch.
    c.query_approx(&q, cat).expect("re-warmed approx");
    let rewarmed = c.stats().expect("after re-warm").metrics;
    assert!(
        counter(&rewarmed, "engine.approx.hit") > counter(&fell_back, "engine.approx.hit"),
        "the store re-warms under the new epoch"
    );
    server.shutdown();
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn streaming_counters_are_visible_through_stats() {
    let mut server = start_server(42);
    let mut c = Client::connect(server.addr()).expect("connect");

    // Warm one category first: engine-cache invalidation only counts
    // epochs that exist, so a delta on a cold server invalidates nothing.
    c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("warm the cache");

    // The obs registry is process-global and shared across tests in this
    // binary, so assert deltas against a baseline, not absolutes.
    let baseline = c.stats().expect("baseline").metrics;
    let counter = |m: &staq_obs::MetricsSnapshot, name: &str| m.counter(name).unwrap_or(0);

    c.apply_delta(0, &Delta::TripDelay { trip: TripId(2), delay_secs: 120 }).expect("delta");
    c.what_if(
        PoiCategory::School,
        &[vec![Delta::TripCancel { trip: TripId(3) }]],
        &AccessQuery::MeanAccess,
    )
    .expect("what-if");

    let m = c.stats().expect("stats").metrics;
    assert!(
        counter(&m, "rt.deltas_applied") > counter(&baseline, "rt.deltas_applied"),
        "rt.deltas_applied must count the applied delta"
    );
    assert!(
        counter(&m, "rt.invalidations.engine") > counter(&baseline, "rt.invalidations.engine"),
        "a structural delta invalidates engine caches"
    );
    assert!(
        counter(&m, "rt.scenario.overlay_bytes") > counter(&baseline, "rt.scenario.overlay_bytes"),
        "what-if overlays report their footprint"
    );
    server.shutdown();
}

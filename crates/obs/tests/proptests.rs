//! Property tests for the metrics layer: concurrent counter soundness,
//! histogram merge/quantile invariants, snapshot JSON round-trips.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::string::string_regex;
#[cfg(not(feature = "obs-off"))]
use staq_obs::AtomicHistogram;
use staq_obs::{Counter, CounterSample, GaugeSample};
use staq_obs::{HistogramSample, LatencyHistogram, MetricsSnapshot};
use std::time::Duration;

#[test]
#[cfg(not(feature = "obs-off"))]
fn counter_is_exact_under_concurrent_increment() {
    static C: Counter = Counter::new("test.concurrent.counter");
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let before = C.get();
    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for i in 0..PER_THREAD {
                    if i % 3 == 0 {
                        C.add(2);
                    } else {
                        C.inc();
                    }
                }
            });
        }
    })
    .unwrap();
    // ceil(10000/3) = 3334 double-increments per thread.
    let expected = THREADS * (PER_THREAD + 3334);
    assert_eq!(C.get() - before, expected);
}

#[test]
#[cfg(not(feature = "obs-off"))]
fn atomic_histogram_total_is_exact_under_concurrent_record() {
    static H: AtomicHistogram = AtomicHistogram::new("test.concurrent.hist");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;
    let before = H.count();
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    H.record_ns((t as u64 + 1) * 1000 + i);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(H.count() - before, THREADS as u64 * PER_THREAD);
    let h = H.to_histogram();
    assert_eq!(h.count(), H.count());
    // Quantiles must lie within the recorded value range (allowing bucket
    // resolution error upward).
    let p50 = h.percentile(50.0).as_nanos() as u64;
    assert!(p50 >= 1000 && p50 <= (THREADS as u64) * 1000 + PER_THREAD + PER_THREAD / 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counters never decrease along any interleaved sequence of adds.
    #[test]
    fn counter_monotone_over_any_add_sequence(adds in vec(0u64..1000, 0..64)) {
        static C: Counter = Counter::new("test.prop.monotone");
        let mut last = C.get();
        for a in adds {
            C.add(a);
            let now = C.get();
            prop_assert!(now >= last, "counter went backwards: {last} -> {now}");
            // With obs-off the add compiles to a no-op; only the full build
            // guarantees the delta.
            if cfg!(not(feature = "obs-off")) {
                prop_assert!(now - last >= a);
            }
            last = now;
        }
    }

    /// Merging partials equals recording the union stream: counts match
    /// exactly and every quantile matches bucket-for-bucket.
    #[test]
    fn histogram_merge_preserves_quantiles(
        xs in vec(1u64..2_000_000_000, 1..256),
        split in 0usize..256,
    ) {
        let split = split % xs.len();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for (i, &ns) in xs.iter().enumerate() {
            if i < split { a.record_ns(ns) } else { b.record_ns(ns) }
            whole.record_ns(ns);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert_eq!(a.mean(), whole.mean());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.99] {
            prop_assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    /// A histogram quantile is bounded by the true sample range: never
    /// below the minimum, and above the maximum by at most the ~7% bucket
    /// resolution (the percentile reports a bucket upper edge clamped to
    /// the true max).
    #[test]
    fn histogram_quantiles_bound_the_sample_range(
        xs in vec(1u64..1_000_000_000, 1..128),
        p in 0.0f64..100.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &ns in &xs { h.record_ns(ns); }
        let q = h.percentile(p).as_nanos() as u64;
        let min = *xs.iter().min().unwrap();
        let max = *xs.iter().max().unwrap();
        prop_assert!(q >= min.min(q), "sanity");
        prop_assert!(q <= max, "quantile {q} above clamped max {max}");
        prop_assert!(
            q as f64 >= min as f64 * 0.93,
            "quantile {q} below min {min} beyond bucket resolution"
        );
    }

    /// Snapshots survive the JSON round-trip bit-for-bit, including
    /// histogram bucket structure.
    #[test]
    fn snapshot_roundtrips_through_serde_json(
        counters in vec(
            (string_regex("[a-zA-Z0-9._ \\\"\\\\-]{0,24}").unwrap(), 0u64..u64::MAX),
            0..8,
        ),
        gauges in vec((string_regex("[a-z.]{1,16}").unwrap(), 0u64..u64::MAX), 0..4),
        samples in vec(1u64..10_000_000, 0..64),
    ) {
        let mut h = LatencyHistogram::new();
        for &ns in &samples { h.record(Duration::from_nanos(ns)); }
        let snap = MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterSample { name, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, value)| GaugeSample { name, value })
                .collect(),
            histograms: vec![HistogramSample::from_histogram("h", &h)],
        };
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(back, snap);
    }
}

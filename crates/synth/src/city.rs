//! The [`City`] bundle and its top-level generator.

use crate::config::CityConfig;
use crate::{pois, roads, transit_gen};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use staq_geom::{KdTree, Point};
use staq_gtfs::{validate, FeedIndex};
use staq_road::RoadGraph;

/// Dense id of a zone (census tract), `z_i ∈ Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// Raw dense index.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a point of interest, `p_j ∈ P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoiId(pub u32);

impl PoiId {
    /// Raw dense index.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Zone-level demographic fields used for fairness weighting (§III-D: "the
/// fairness index can be further weighted by zone-level demographic data").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demographics {
    /// Fraction of working-age residents unemployed (0..1).
    pub pct_unemployed: f64,
    /// Fraction clinically vulnerable (0..1) — the TfWM vaccination-siting
    /// use case from the paper's introduction.
    pub pct_vulnerable: f64,
    /// Fraction under 16 (0..1) — school accessibility weighting.
    pub pct_children: f64,
}

/// A census-tract zone: the paper's atomic spatial unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    pub id: ZoneId,
    /// Geographic centroid (planar meters).
    pub centroid: Point,
    /// Resident population.
    pub population: f64,
    pub demographics: Demographics,
}

/// POI categories evaluated in the paper (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    School,
    Hospital,
    VaxCenter,
    JobCenter,
}

impl PoiCategory {
    /// All four categories in Table I order.
    pub const ALL: [PoiCategory; 4] = [
        PoiCategory::School,
        PoiCategory::Hospital,
        PoiCategory::VaxCenter,
        PoiCategory::JobCenter,
    ];

    /// Table label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            PoiCategory::School => "School",
            PoiCategory::Hospital => "Hospital",
            PoiCategory::VaxCenter => "Vax Center",
            PoiCategory::JobCenter => "Job Center",
        }
    }
}

impl std::fmt::Display for PoiCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A point of interest, associated to its containing zone (§IV-A: "p_j is
/// associated to its zone z_i" — here, the zone with the nearest centroid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    pub id: PoiId,
    pub category: PoiCategory,
    pub pos: Point,
    /// Zone this POI belongs to.
    pub zone: ZoneId,
}

/// A fully generated synthetic city: zones, POIs, road graph, transit feed.
#[derive(Debug, Clone)]
pub struct City {
    pub config: CityConfig,
    pub zones: Vec<Zone>,
    /// All POIs across categories; filter with [`City::pois_of`].
    pub pois: Vec<Poi>,
    pub road: RoadGraph,
    /// Indexed GTFS feed (parsed back from generated text).
    pub feed: FeedIndex,
    /// Urban density cores; `cores[0]` is the city center.
    pub cores: Vec<Point>,
}

impl City {
    /// Generates a city from `config`. Deterministic in `config.seed`.
    ///
    /// The generated GTFS feed is serialized to text and re-parsed so every
    /// experiment exercises the same ingestion path a real feed would
    /// (`staq-gtfs`'s CSV reader and validator).
    pub fn generate(config: &CityConfig) -> City {
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Density cores: center first, sub-centers uniformly in the middle
        // half of the study area.
        let half = config.side_m * 0.5;
        let mut cores = vec![Point::new(half, half)];
        for _ in 1..config.n_cores {
            cores.push(Point::new(
                rng.random_range(config.side_m * 0.25..config.side_m * 0.75),
                rng.random_range(config.side_m * 0.25..config.side_m * 0.75),
            ));
        }

        let zones = generate_zones(config, &cores, &mut rng);
        let road = roads::generate(config, &mut rng);
        let feed_raw = transit_gen::generate(config, &cores, &road, &mut rng);
        // Round-trip through GTFS text (see doc comment above).
        let text = staq_gtfs::write::to_text(&feed_raw);
        let feed_parsed = text.parse().expect("generated feed must reparse");
        validate::assert_valid(&feed_parsed);
        let feed = FeedIndex::build(feed_parsed);
        let pois = pois::generate(config, &zones, &cores, &mut rng);

        City { config: config.clone(), zones, pois, road, feed, cores }
    }

    /// Number of zones |Z|.
    #[inline]
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Centroid of `z`.
    #[inline]
    pub fn zone_centroid(&self, z: ZoneId) -> Point {
        self.zones[z.idx()].centroid
    }

    /// POIs of one category, in id order.
    pub fn pois_of(&self, cat: PoiCategory) -> Vec<&Poi> {
        self.pois.iter().filter(|p| p.category == cat).collect()
    }

    /// `(centroid, raw zone id)` pairs for spatial indexing.
    pub fn zone_points(&self) -> Vec<(Point, u32)> {
        self.zones.iter().map(|z| (z.centroid, z.id.0)).collect()
    }

    /// Total population.
    pub fn total_population(&self) -> f64 {
        self.zones.iter().map(|z| z.population).sum()
    }
}

/// Lays zones out on a jittered grid with density-weighted population.
fn generate_zones(config: &CityConfig, cores: &[Point], rng: &mut StdRng) -> Vec<Zone> {
    let n = config.n_zones as usize;
    let g = (n as f64).sqrt().ceil() as usize;
    let cell = config.side_m / g as f64;

    // Choose n cells of the g x g grid without replacement (all when equal).
    let mut cells: Vec<usize> = (0..g * g).collect();
    // Fisher-Yates partial shuffle.
    for i in 0..n.min(cells.len()) {
        let j = rng.random_range(i..cells.len());
        cells.swap(i, j);
    }
    cells.truncate(n);
    cells.sort_unstable(); // deterministic zone ordering, row-major

    // Density: mixture of Gaussians around cores plus a uniform floor.
    let sigma = config.side_m * 0.22;
    let density = |p: &Point| -> f64 {
        let mut d = 0.15;
        for c in cores {
            d += (-p.dist2(c) / (2.0 * sigma * sigma)).exp();
        }
        d
    };

    let mut zones: Vec<Zone> = Vec::with_capacity(n);
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    for (i, &cellno) in cells.iter().enumerate() {
        let cx = (cellno % g) as f64;
        let cy = (cellno / g) as f64;
        let jitter = 0.35;
        let centroid = Point::new(
            (cx + 0.5 + rng.random_range(-jitter..jitter)) * cell,
            (cy + 0.5 + rng.random_range(-jitter..jitter)) * cell,
        );
        let w = density(&centroid);
        weights.push(w);
        // Demographics: unemployment and vulnerability rise toward the
        // periphery (classic UK urban pattern the paper's equity queries
        // target), with idiosyncratic noise.
        let core_dist = cores.iter().map(|c| centroid.dist(c)).fold(f64::INFINITY, f64::min);
        let periphery = (core_dist / (config.side_m * 0.7)).min(1.0);
        let noise = |rng: &mut StdRng| rng.random_range(-0.03f64..0.03);
        zones.push(Zone {
            id: ZoneId(i as u32),
            centroid,
            population: 0.0, // filled below
            demographics: Demographics {
                pct_unemployed: (0.04 + 0.08 * periphery + noise(rng)).clamp(0.0, 1.0),
                pct_vulnerable: (0.08 + 0.10 * periphery + noise(rng)).clamp(0.0, 1.0),
                pct_children: (0.17 + 0.06 * periphery + noise(rng)).clamp(0.0, 1.0),
            },
        });
    }
    let wsum: f64 = weights.iter().sum();
    for (z, w) in zones.iter_mut().zip(&weights) {
        z.population = (config.population as f64) * w / wsum;
    }
    zones
}

/// Associates each POI position with the zone of nearest centroid.
pub(crate) fn nearest_zone(zone_tree: &KdTree, p: &Point) -> ZoneId {
    ZoneId(zone_tree.nearest(p).expect("at least one zone").item)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::tiny(7);
        let a = City::generate(&cfg);
        let b = City::generate(&cfg);
        assert_eq!(a.zones, b.zones);
        assert_eq!(a.pois, b.pois);
        assert_eq!(a.feed.feed(), b.feed.feed());
        assert_eq!(a.road.n_edges(), b.road.n_edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = City::generate(&CityConfig::tiny(1));
        let b = City::generate(&CityConfig::tiny(2));
        assert_ne!(a.zones, b.zones);
    }

    #[test]
    fn zone_and_poi_counts_match_config() {
        let cfg = CityConfig::small(3);
        let city = City::generate(&cfg);
        assert_eq!(city.n_zones(), cfg.n_zones as usize);
        assert_eq!(city.pois_of(PoiCategory::School).len(), cfg.pois.schools as usize);
        assert_eq!(city.pois_of(PoiCategory::Hospital).len(), cfg.pois.hospitals as usize);
        assert_eq!(city.pois_of(PoiCategory::VaxCenter).len(), cfg.pois.vax_centers as usize);
        assert_eq!(city.pois_of(PoiCategory::JobCenter).len(), cfg.pois.job_centers as usize);
    }

    #[test]
    fn population_sums_to_config_total() {
        let cfg = CityConfig::small(3);
        let city = City::generate(&cfg);
        let total = city.total_population();
        assert!((total - cfg.population as f64).abs() / (cfg.population as f64) < 1e-9);
    }

    #[test]
    fn zones_lie_inside_study_area() {
        let cfg = CityConfig::small(5);
        let city = City::generate(&cfg);
        for z in &city.zones {
            assert!(z.centroid.x >= -cfg.side_m * 0.01 && z.centroid.x <= cfg.side_m * 1.01);
            assert!(z.centroid.y >= -cfg.side_m * 0.01 && z.centroid.y <= cfg.side_m * 1.01);
        }
    }

    #[test]
    fn center_zones_are_denser() {
        let cfg = CityConfig::small(11);
        let city = City::generate(&cfg);
        let center = city.cores[0];
        let (mut inner, mut outer) = (Vec::new(), Vec::new());
        for z in &city.zones {
            if z.centroid.dist(&center) < cfg.side_m * 0.2 {
                inner.push(z.population);
            } else if z.centroid.dist(&center) > cfg.side_m * 0.45 {
                outer.push(z.population);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&inner) > mean(&outer) * 1.5,
            "core density {} should well exceed periphery {}",
            mean(&inner),
            mean(&outer)
        );
    }

    #[test]
    fn pois_are_associated_to_nearby_zones() {
        let city = City::generate(&CityConfig::small(9));
        let tree = KdTree::build(&city.zone_points());
        for poi in &city.pois {
            let nearest = nearest_zone(&tree, &poi.pos);
            assert_eq!(poi.zone, nearest);
        }
    }

    #[test]
    fn demographics_are_fractions() {
        let city = City::generate(&CityConfig::small(13));
        for z in &city.zones {
            let d = z.demographics;
            for v in [d.pct_unemployed, d.pct_vulnerable, d.pct_children] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}

//! Evaluation metrics (paper §V-A): MAE, Pearson correlation, accuracy.

/// Mean absolute error between equal-length slices. Panics on length
/// mismatch or empty input — both indicate a pipeline bug, not data.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mae length mismatch");
    assert!(!truth.is_empty(), "mae of empty slice");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "rmse length mismatch");
    assert!(!truth.is_empty(), "rmse of empty slice");
    (truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum::<f64>() / truth.len() as f64).sqrt()
}

/// Pearson correlation coefficient. Returns 0 when either side has zero
/// variance (the correlation is undefined; 0 is the conservative report for
/// a model that predicted a constant).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va < 1e-18 || vb < 1e-18 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Fraction of positions where the two label slices agree.
pub fn accuracy<T: PartialEq>(truth: &[T], pred: &[T]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "accuracy length mismatch");
    assert!(!truth.is_empty(), "accuracy of empty slice");
    truth.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[1.0, 4.0, 0.0]), (0.0 + 2.0 + 3.0) / 3.0);
        assert_eq!(mae(&[5.0], &[5.0]), 0.0);
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let t = [1.0, 2.0, 10.0];
        let p = [2.0, 0.0, 3.0];
        assert!(rmse(&t, &p) >= mae(&t, &p));
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let pos: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        let neg: Vec<f64> = a.iter().map(|x| -3.0 * x).collect();
        assert!((pearson(&a, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&a, &b).abs() < 0.5);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
        assert_eq!(accuracy(&["a"], &["a"]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}

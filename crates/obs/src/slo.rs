//! Declarative latency/availability objectives per query class, with
//! multi-window burn rates.
//!
//! An SLO here is "fraction `objective` of requests finish under
//! `threshold` and are not shed". A *bad event* is a request whose
//! latency landed above the threshold, plus every admission shed or
//! worker-side deadline miss attributed to the class (the serving layer
//! calls [`shed`] at those sites — shed requests never reach the
//! latency histograms, so they must be counted separately or the error
//! budget would silently exclude exactly the failures admission control
//! produces).
//!
//! Burn rate follows the multi-window convention: over a window,
//! `burn = (bad / total) / (1 - objective)` — 1.0 means the budget is
//! being spent exactly at the sustainable pace, 10 means the budget
//! burns ten times too fast. The ops layer evaluates a fast window
//! (default 5 min, pages on sudden breakage) and a slow window (default
//! 1 h, catches slow leaks) from the same [`WindowRing`](crate::window::WindowRing).
//!
//! Everything here keys off the four serving classes; their latency
//! source histograms are the per-kind `serve.request.*` families the
//! worker pool already records. Per-class shed counts live in the
//! `obs.slo.<class>.shed` counter family so window deltas yield
//! per-window shed counts for free.

use crate::hist::bucket_value;
use crate::registry::Counter;
use crate::snapshot::MetricsSnapshot;

/// The serving classes objectives are declared over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloClass {
    /// Access queries (`serve.request.query`).
    Query,
    /// Journey planning (`serve.request.plan`).
    Plan,
    /// Per-zone measure dumps (`serve.request.measures`).
    Measures,
    /// Mutations: POI/route edits and streamed deltas.
    Edits,
}

impl SloClass {
    pub const ALL: [SloClass; 4] =
        [SloClass::Query, SloClass::Plan, SloClass::Measures, SloClass::Edits];

    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Query => "query",
            SloClass::Plan => "plan",
            SloClass::Measures => "measures",
            SloClass::Edits => "edits",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<SloClass> {
        SloClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The cumulative latency histograms whose samples this class
    /// aggregates.
    pub fn hist_names(self) -> &'static [&'static str] {
        match self {
            SloClass::Query => &["serve.request.query"],
            SloClass::Plan => &["serve.request.plan"],
            SloClass::Measures => &["serve.request.measures"],
            SloClass::Edits => &[
                "serve.request.add_poi",
                "serve.request.add_bus_route",
                "serve.request.apply_delta",
                "serve.request.delta_batch",
            ],
        }
    }

    /// The class's shed counter name.
    pub fn shed_counter(self) -> &'static str {
        match self {
            SloClass::Query => "obs.slo.query.shed",
            SloClass::Plan => "obs.slo.plan.shed",
            SloClass::Measures => "obs.slo.measures.shed",
            SloClass::Edits => "obs.slo.edits.shed",
        }
    }
}

// Fixed bank of shed counters — the registry takes statics only, so the
// four classes each get a declared counter rather than a dynamic name.
static SHED_QUERY: Counter = Counter::new("obs.slo.query.shed");
static SHED_PLAN: Counter = Counter::new("obs.slo.plan.shed");
static SHED_MEASURES: Counter = Counter::new("obs.slo.measures.shed");
static SHED_EDITS: Counter = Counter::new("obs.slo.edits.shed");

/// Counts one availability error (admission shed or deadline miss)
/// against `class`'s error budget. No-op under `obs-off`.
pub fn shed(class: SloClass) {
    shed_cell(class).inc()
}

/// Cumulative shed count for `class` since boot.
pub fn shed_count(class: SloClass) -> u64 {
    shed_cell(class).get()
}

fn shed_cell(class: SloClass) -> &'static Counter {
    match class {
        SloClass::Query => &SHED_QUERY,
        SloClass::Plan => &SHED_PLAN,
        SloClass::Measures => &SHED_MEASURES,
        SloClass::Edits => &SHED_EDITS,
    }
}

/// One declared objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    pub class: SloClass,
    /// Good-fraction objective in thousandths: 999 = 99.9%.
    pub objective_milli: u32,
    /// Latency threshold a good request must finish under.
    pub threshold_ns: u64,
}

impl SloSpec {
    /// The error-budget fraction: `1 - objective`.
    pub fn budget_fraction(&self) -> f64 {
        1.0 - (self.objective_milli.min(1000) as f64 / 1000.0)
    }
}

const DEFAULT_SPECS: [SloSpec; 4] = [
    SloSpec { class: SloClass::Query, objective_milli: 999, threshold_ns: 50_000_000 },
    SloSpec { class: SloClass::Plan, objective_milli: 999, threshold_ns: 100_000_000 },
    SloSpec { class: SloClass::Measures, objective_milli: 999, threshold_ns: 50_000_000 },
    SloSpec { class: SloClass::Edits, objective_milli: 995, threshold_ns: 250_000_000 },
];

static SPECS: std::sync::Mutex<Option<[SloSpec; 4]>> = std::sync::Mutex::new(None);

/// The active objectives, defaults unless [`configure`]d.
pub fn specs() -> [SloSpec; 4] {
    SPECS.lock().expect("slo specs poisoned").unwrap_or(DEFAULT_SPECS)
}

/// Replaces the objective for each class present in `new` (absent
/// classes keep their current spec). Process-global, like the registry.
pub fn configure(new: &[SloSpec]) {
    let mut guard = SPECS.lock().expect("slo specs poisoned");
    let mut specs = guard.unwrap_or(DEFAULT_SPECS);
    for spec in new {
        if let Some(slot) = specs.iter_mut().find(|s| s.class == spec.class) {
            *slot = *spec;
        }
    }
    *guard = Some(specs);
}

/// Total and bad event counts for `class` inside one delta snapshot
/// (a [`Window`](crate::window::Window)'s `delta` or a trailing merge).
///
/// Returns `(total, bad)`: total = latency samples + sheds; bad =
/// samples whose bucket's upper edge exceeds the threshold + sheds.
/// Working at bucket granularity inherits the histogram's ~6% edge
/// resolution, which is the precision the quantiles already have.
pub fn window_events(spec: &SloSpec, delta: &MetricsSnapshot) -> (u64, u64) {
    let mut total = 0u64;
    let mut bad = 0u64;
    for hist in spec.class.hist_names() {
        if let Some(h) = delta.histogram(hist) {
            total += h.count;
            bad += h
                .buckets
                .iter()
                .filter(|&&(idx, _)| bucket_value(idx as usize) > spec.threshold_ns)
                .map(|&(_, n)| n)
                .sum::<u64>();
        }
    }
    let sheds = delta.counter(spec.class.shed_counter()).unwrap_or(0);
    (total + sheds, bad + sheds)
}

/// Burn rate for `bad` out of `total` events against an objective:
/// `(bad/total) / budget_fraction`. Zero traffic burns nothing; a zero
/// budget (objective = 100%) makes any bad event an infinite burn,
/// clamped to a large finite sentinel so it serializes.
pub fn burn_rate(total: u64, bad: u64, budget_fraction: f64) -> f64 {
    if total == 0 || bad == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    if budget_fraction <= 0.0 {
        return 1e9;
    }
    bad_fraction / budget_fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::snapshot::{CounterSample, HistogramSample};

    fn delta(class: SloClass, latencies_ns: &[u64], sheds: u64) -> MetricsSnapshot {
        let mut h = LatencyHistogram::new();
        for &ns in latencies_ns {
            h.record_ns(ns);
        }
        MetricsSnapshot {
            counters: vec![CounterSample { name: class.shed_counter().into(), value: sheds }],
            gauges: vec![],
            histograms: vec![HistogramSample::from_histogram(class.hist_names()[0], &h)],
        }
    }

    #[test]
    fn violations_and_sheds_both_count_as_bad() {
        let spec =
            SloSpec { class: SloClass::Query, objective_milli: 990, threshold_ns: 1_000_000 };
        // 3 fast, 2 slow, 1 shed.
        let d = delta(SloClass::Query, &[10_000, 10_000, 10_000, 50_000_000, 50_000_000], 1);
        let (total, bad) = window_events(&spec, &d);
        assert_eq!(total, 6);
        assert_eq!(bad, 3);
        let burn = burn_rate(total, bad, spec.budget_fraction());
        // 50% bad against a 1% budget burns 50x.
        assert!((burn - 50.0).abs() < 1e-9, "burn = {burn}");
    }

    #[test]
    fn quiet_window_burns_nothing() {
        let spec = specs()[0];
        let (total, bad) = window_events(&spec, &MetricsSnapshot::default());
        assert_eq!((total, bad), (0, 0));
        assert_eq!(burn_rate(total, bad, spec.budget_fraction()), 0.0);
    }

    #[test]
    fn edits_class_sums_all_edit_histograms() {
        let spec = SloSpec { class: SloClass::Edits, objective_milli: 990, threshold_ns: 1_000 };
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        let d = MetricsSnapshot {
            histograms: vec![
                HistogramSample::from_histogram("serve.request.add_poi", &h.clone()),
                HistogramSample::from_histogram("serve.request.apply_delta", &h),
            ],
            ..Default::default()
        };
        let (total, bad) = window_events(&spec, &d);
        assert_eq!((total, bad), (2, 2));
    }

    #[test]
    fn configure_overrides_only_named_classes() {
        // Serialized by being the only test that writes SPECS; reset after.
        let plan_before = specs()[1];
        configure(&[SloSpec { class: SloClass::Query, objective_milli: 900, threshold_ns: 77 }]);
        let now = specs();
        assert_eq!(now[0].objective_milli, 900);
        assert_eq!(now[0].threshold_ns, 77);
        assert_eq!(now[1], plan_before, "plan untouched");
        configure(&[DEFAULT_SPECS[0]]);
    }

    #[test]
    fn class_names_round_trip() {
        for c in SloClass::ALL {
            assert_eq!(SloClass::from_name(c.name()), Some(c));
        }
        assert_eq!(SloClass::from_name("telepathy"), None);
    }
}

//! Minimal HTTP/1.1 server for the gateway binary.
//!
//! A small step up from the obs `/metrics` listener: it parses the
//! request line, headers, query string and a `Content-Length` body,
//! supports keep-alive, and runs a handler on a fixed accept pool. It is
//! an ops/integration surface, not a performance path — the binary
//! protocol behind it is where throughput lives.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 4 << 20;

#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Percent-decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Last value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

pub struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse { status, content_type: "application/json", body: body.into_bytes() }
    }

    pub fn text(status: u16, body: &str) -> HttpResponse {
        HttpResponse { status, content_type: "text/plain", body: body.as_bytes().to_vec() }
    }
}

fn status_phrase(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

pub struct HttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl HttpHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the pool. Idempotent.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Nudge every blocked accept once.
            for _ in 0..self.threads.len().max(1) {
                let _ = TcpStream::connect(self.addr);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `handler` on `threads` accept threads, each
/// handling its connection to completion (keep-alive included).
pub fn serve_http(addr: &str, threads: usize, handler: Handler) -> io::Result<HttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut pool = Vec::new();
    for i in 0..threads.max(1) {
        let listener = listener.try_clone()?;
        let stop = Arc::clone(&stop);
        let handler = Arc::clone(&handler);
        pool.push(std::thread::Builder::new().name(format!("staq-http-{i}")).spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = serve_conn(stream, &handler, &stop);
            }
        })?);
    }
    Ok(HttpHandle { addr, stop, threads: pool })
}

fn serve_conn(mut stream: TcpStream, handler: &Handler, stop: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (req, keep_alive) = match read_request(&mut stream, &mut buf)? {
            Some(r) => r,
            None => return Ok(()), // clean close between requests
        };
        let resp = handler(&req);
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            resp.status,
            status_phrase(resp.status),
            resp.content_type,
            resp.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&resp.body)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Reads one request (head + body). `None` on clean EOF before any byte
/// of a new request.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> io::Result<Option<(HttpRequest, bool)>> {
    let mut scratch = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Ok(None);
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(_) => return Ok(None),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/");
    let http11 = parts.next().unwrap_or("HTTP/1.1") == "HTTP/1.1";

    let mut content_len = 0usize;
    let mut connection_close = !http11;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => content_len = value.parse().unwrap_or(0),
            "connection" => connection_close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_len > MAX_BODY {
        return Ok(None);
    }

    let body_start = head_end + 4;
    while buf.len() < body_start + content_len {
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(_) => return Ok(None),
        }
    }
    let body = buf[body_start..body_start + content_len].to_vec();
    buf.drain(..body_start + content_len);

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    Ok(Some((HttpRequest { method, path: path.to_string(), query, body }, !connection_close)))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler() -> Handler {
        Arc::new(|req: &HttpRequest| {
            let body = format!(
                "{} {} q={} body={}",
                req.method,
                req.path,
                req.param("q").unwrap_or("-"),
                String::from_utf8_lossy(&req.body),
            );
            HttpResponse::text(200, &body)
        })
    }

    #[test]
    fn parses_get_with_percent_encoded_query() {
        let mut h = serve_http("127.0.0.1:0", 2, echo_handler()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /v1/echo?q=a%20b+c HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.ends_with("GET /v1/echo q=a b c body="), "{out}");
        h.shutdown();
        h.shutdown(); // idempotent
    }

    #[test]
    fn keep_alive_serves_pipelined_requests_and_post_bodies() {
        let mut h = serve_http("127.0.0.1:0", 1, echo_handler()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        s.write_all(b"GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.contains("POST /a q=- body=hello"), "{out}");
        assert!(out.contains("GET /b q=- body="), "{out}");
        let closes = out.matches("HTTP/1.1 200 OK").count();
        assert_eq!(closes, 2, "{out}");
        h.shutdown();
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `RngExt::random_range`, and
//! `seq::SliceRandom::shuffle` — with the same signatures as rand 0.10.
//! The generator is xoshiro256++ seeded through SplitMix64: deterministic
//! for a given seed, statistically strong enough for the synthetic-city
//! statistics the test-suite asserts. The stream differs from upstream
//! `StdRng` (ChaCha12), which is fine: the workspace only relies on
//! *self-consistent* determinism, never on a specific stream.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Sources of randomness: the core 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers (rand 0.10's extension-trait spelling).
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range.
    /// The element type is a free parameter (upstream's shape) so return
    /// position can drive inference of float-literal ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Maps 64 random bits to a uniform f64 in [0, 1).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`RngExt::random_range`] accepts, producing `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); one u64 of
                // entropy is plenty for spans far below 2^64.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = r.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0u32..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.random_range(5u32..5);
    }
}

//! **Fig. 5** — predicted GAC MAC mapped for vaccination centers
//! (Birmingham at β = 3 %, Coventry at β = 10 %), rendered as an ASCII
//! choropleth plus a per-zone CSV, with the ground-truth map alongside for
//! visual comparison.
//!
//! ```text
//! cargo run --release -p staq-bench --bin fig5 -- --scale 0.06 --out fig5.csv
//! ```

use staq_bench::{ascii_choropleth, birmingham, coventry, BenchArgs, CsvOut};
use staq_core::{NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_ml::ModelKind;
use staq_synth::{City, PoiCategory};
use staq_todam::TodamSpec;
use staq_transit::CostKind;

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.06, ..Default::default() });
    let spec = TodamSpec { per_hour: 5, ..Default::default() };
    let mut csv = CsvOut::new(&["city", "zone", "x", "y", "mac_pred", "mac_truth"]);

    println!("== Fig. 5: predicted GAC MAC, vaccination centers (scale {}) ==", args.scale);
    render(&birmingham(&args), 0.03, &spec, &args, &mut csv);
    render(&coventry(&args), 0.10, &spec, &args, &mut csv);
    csv.maybe_write(&args.out);
}

fn render(city: &City, beta: f64, spec: &TodamSpec, args: &BenchArgs, csv: &mut CsvOut) {
    let artifacts =
        OfflineArtifacts::build(city, &spec.interval, &staq_road::IsochroneParams::default());
    let truth = NaiveResult::compute(city, spec, PoiCategory::VaxCenter, CostKind::Gac);
    let cfg = PipelineConfig {
        beta,
        model: ModelKind::Mlp,
        cost: CostKind::Gac,
        todam: spec.clone(),
        seed: args.seed,
        ..Default::default()
    };
    let result = SsrPipeline::new(city, &artifacts, cfg).run(PoiCategory::VaxCenter);

    let pred: Vec<_> = result.predicted.iter().map(|m| (m.zone, m.mac)).collect();
    let gt: Vec<_> = truth.measures.iter().map(|m| (m.zone, m.mac)).collect();
    let (w, h) = (48, 20);
    println!(
        "\n{} (β = {:.0}%) — left: SSR prediction, right: ground truth (darker = worse access)",
        city.config.name,
        beta * 100.0
    );
    let left = ascii_choropleth(city, &pred, w, h);
    let right = ascii_choropleth(city, &gt, w, h);
    for (a, b) in left.lines().zip(right.lines()) {
        println!("{a}   {b}");
    }

    let truth_by_zone: std::collections::HashMap<_, _> =
        truth.measures.iter().map(|m| (m.zone, m.mac)).collect();
    for m in &result.predicted {
        let c = city.zone_centroid(m.zone);
        csv.row(&[
            city.config.name.clone(),
            m.zone.0.to_string(),
            format!("{:.1}", c.x),
            format!("{:.1}", c.y),
            format!("{:.3}", m.mac),
            truth_by_zone.get(&m.zone).map_or(String::new(), |v| format!("{v:.3}")),
        ]);
    }
}

//! Typed GTFS records and the in-memory [`Feed`].
//!
//! Ids are dense `u32` newtypes assigned at parse time; the original GTFS
//! string ids are retained on each record for round-tripping. Dense ids let
//! downstream structures (timetables, hop trees) use `Vec` indexing instead
//! of hash maps on hot paths.

use crate::time::{DayOfWeek, Stime};
use serde::{Deserialize, Serialize};
use staq_geom::Point;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw dense index.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Dense id of a [`Stop`].
    StopId
);
id_newtype!(
    /// Dense id of a [`Route`].
    RouteId
);
id_newtype!(
    /// Dense id of a [`Trip`].
    TripId
);
id_newtype!(
    /// Dense id of a [`Service`] (calendar entry).
    ServiceId
);
id_newtype!(
    /// Dense id of an [`Agency`].
    AgencyId
);

/// A transit agency (`agency.txt`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Agency {
    pub id: AgencyId,
    /// Original GTFS `agency_id`.
    pub gtfs_id: String,
    pub name: String,
}

/// A boarding location (`stops.txt`). Coordinates are planar meters in the
/// synthetic pipeline (see `staq-geom`); adapters for real feeds project
/// lat/lon into the same frame before constructing the feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stop {
    pub id: StopId,
    /// Original GTFS `stop_id`.
    pub gtfs_id: String,
    pub name: String,
    /// Planar position in meters.
    pub pos: Point,
}

/// Vehicle classes (`routes.txt` `route_type`). Only the modes relevant to
/// the paper's bus-centric West Midlands network are modeled, plus rail
/// variants for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteType {
    Tram,
    Metro,
    Rail,
    Bus,
}

impl RouteType {
    /// GTFS numeric code.
    pub const fn code(self) -> u32 {
        match self {
            RouteType::Tram => 0,
            RouteType::Metro => 1,
            RouteType::Rail => 2,
            RouteType::Bus => 3,
        }
    }

    /// Parses the GTFS numeric code.
    pub fn from_code(c: u32) -> Result<Self, String> {
        Ok(match c {
            0 => RouteType::Tram,
            1 => RouteType::Metro,
            2 => RouteType::Rail,
            3 => RouteType::Bus,
            other => return Err(format!("unsupported route_type {other}")),
        })
    }
}

/// A named service pattern (`routes.txt`), e.g. bus line "X12".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    pub id: RouteId,
    /// Original GTFS `route_id`.
    pub gtfs_id: String,
    pub agency: AgencyId,
    /// Rider-facing short name ("11A").
    pub short_name: String,
    pub route_type: RouteType,
}

/// A calendar entry (`calendar.txt`): the weekly pattern a service runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    pub id: ServiceId,
    /// Original GTFS `service_id`.
    pub gtfs_id: String,
    /// `days[DayOfWeek::index()]` is true when the service operates that day.
    pub days: [bool; 7],
}

impl Service {
    /// True when the service operates on `day`.
    #[inline]
    pub fn runs_on(&self, day: DayOfWeek) -> bool {
        self.days[day.index()]
    }
}

/// One scheduled vehicle run (`trips.txt`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    pub id: TripId,
    /// Original GTFS `trip_id`.
    pub gtfs_id: String,
    pub route: RouteId,
    pub service: ServiceId,
}

/// A scheduled call at a stop (`stop_times.txt`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopTime {
    pub trip: TripId,
    pub stop: StopId,
    pub arrival: Stime,
    pub departure: Stime,
    /// Order of this call within the trip (0-based, strictly increasing).
    pub seq: u32,
}

/// A complete in-memory GTFS feed.
///
/// Records are stored densely: `stops[s.idx()]` is the stop with id `s`.
/// `stop_times` is sorted by `(trip, seq)` — the natural order both for the
/// router's timetable construction and for hop-tree generation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Feed {
    pub agencies: Vec<Agency>,
    pub stops: Vec<Stop>,
    pub routes: Vec<Route>,
    pub services: Vec<Service>,
    pub trips: Vec<Trip>,
    pub stop_times: Vec<StopTime>,
}

impl Feed {
    /// Total number of scheduled calls.
    pub fn n_stop_times(&self) -> usize {
        self.stop_times.len()
    }

    /// Sorts `stop_times` into canonical `(trip, seq)` order. Parsing and
    /// synthesis both call this; it is idempotent.
    pub fn normalize(&mut self) {
        self.stop_times.sort_by_key(|st| (st.trip, st.seq));
    }

    /// True when `stop_times` is in canonical order.
    pub fn is_normalized(&self) -> bool {
        self.stop_times.windows(2).all(|w| (w[0].trip, w[0].seq) <= (w[1].trip, w[1].seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_newtypes_are_dense_indices() {
        let s = StopId(7);
        assert_eq!(s.idx(), 7);
        assert_eq!(StopId::from(7u32), s);
    }

    #[test]
    fn route_type_codes_roundtrip() {
        for rt in [RouteType::Tram, RouteType::Metro, RouteType::Rail, RouteType::Bus] {
            assert_eq!(RouteType::from_code(rt.code()).unwrap(), rt);
        }
        assert!(RouteType::from_code(99).is_err());
    }

    #[test]
    fn service_runs_on_days() {
        let svc = Service {
            id: ServiceId(0),
            gtfs_id: "WK".into(),
            days: [true, true, true, true, true, false, false],
        };
        assert!(svc.runs_on(DayOfWeek::Tuesday));
        assert!(!svc.runs_on(DayOfWeek::Sunday));
    }

    #[test]
    fn normalize_sorts_stop_times() {
        let mut feed = Feed {
            stop_times: vec![
                StopTime {
                    trip: TripId(1),
                    stop: StopId(0),
                    arrival: Stime(10),
                    departure: Stime(10),
                    seq: 1,
                },
                StopTime {
                    trip: TripId(0),
                    stop: StopId(1),
                    arrival: Stime(5),
                    departure: Stime(5),
                    seq: 0,
                },
                StopTime {
                    trip: TripId(1),
                    stop: StopId(2),
                    arrival: Stime(2),
                    departure: Stime(2),
                    seq: 0,
                },
            ],
            ..Default::default()
        };
        assert!(!feed.is_normalized());
        feed.normalize();
        assert!(feed.is_normalized());
        assert_eq!(feed.stop_times[0].trip, TripId(0));
        assert_eq!(
            feed.stop_times[1],
            StopTime {
                trip: TripId(1),
                stop: StopId(2),
                arrival: Stime(2),
                departure: Stime(2),
                seq: 0
            }
        );
    }
}

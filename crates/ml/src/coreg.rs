//! COREG: semi-supervised regression by co-training two k-NN regressors
//! (Zhou & Li, IJCAI 2005) — one of the paper's "more bespoke SSR methods".
//!
//! Two k-NN regressors with different Minkowski orders (p = 2 and p = 5)
//! give two views of the same feature space. Each round, each regressor
//! selects the unlabeled example whose self-labeled addition most improves
//! local consistency on its own training set, and *teaches* it to the other
//! regressor. Final predictions average the two.

use crate::knn::KnnRegressor;
use crate::linalg::Matrix;
use crate::ssr::{SsrModel, SsrTask};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// COREG configuration.
#[derive(Debug, Clone, Copy)]
pub struct Coreg {
    /// Neighbours per regressor (paper's k = 3).
    pub k: usize,
    /// Co-training rounds.
    pub rounds: usize,
    /// Candidate pool size drawn from the unlabeled set each round.
    pub pool: usize,
}

impl Default for Coreg {
    fn default() -> Self {
        Coreg { k: 3, rounds: 12, pool: 60 }
    }
}

impl Coreg {
    /// Squared-error improvement Δ of adding `(xq, yq)` to `h`, evaluated on
    /// `xq`'s labeled neighbourhood (Zhou & Li's selection criterion).
    fn delta(h: &KnnRegressor, xq: &[f64], yq: &[f64]) -> f64 {
        let nb = h.neighbors(xq);
        if nb.is_empty() {
            return 0.0;
        }
        let mut with = h.clone();
        with.push(xq, yq);
        let mut delta = 0.0;
        // Compare neighbourhood reconstruction before/after the addition.
        for &i in &nb {
            // Access training rows through a probe prediction: the stored
            // example's own features/targets.
            let (xi, yi) = (h_train_x(h, i), h_train_y(h, i));
            let before = sq_err(&h.predict_one(xi), yi);
            let after = sq_err(&with.predict_one(xi), yi);
            delta += before - after;
        }
        delta
    }
}

// KnnRegressor exposes training rows only through prediction; for COREG's
// criterion we need direct access. Small crate-internal accessors keep the
// public kNN API minimal.
fn h_train_x(h: &KnnRegressor, i: usize) -> &[f64] {
    h.train_x(i)
}

fn h_train_y(h: &KnnRegressor, i: usize) -> &[f64] {
    h.train_y(i)
}

fn sq_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

impl SsrModel for Coreg {
    fn name(&self) -> &'static str {
        "COREG"
    }

    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix {
        task.validate().expect("invalid SSR task");
        let mut h1 = KnnRegressor::new(self.k, 2.0);
        let mut h2 = KnnRegressor::new(self.k, 5.0);
        h1.fit(task.x_labeled, task.y_labeled);
        h2.fit(task.x_labeled, task.y_labeled);

        let n_u = task.x_unlabeled.rows();
        let mut rng = StdRng::seed_from_u64(task.seed ^ 0xC0DE);
        let mut available: Vec<usize> = (0..n_u).collect();
        available.shuffle(&mut rng);

        for _ in 0..self.rounds {
            if available.is_empty() {
                break;
            }
            let pool: Vec<usize> = available.iter().copied().take(self.pool).collect();
            let mut taught = Vec::new();
            // h1 teaches h2, then h2 teaches h1.
            for source in 0..2 {
                let (src, dst): (&KnnRegressor, usize) =
                    if source == 0 { (&h1, 2) } else { (&h2, 1) };
                let mut best: Option<(usize, Vec<f64>, f64)> = None;
                for &u in &pool {
                    if taught.contains(&u) {
                        continue;
                    }
                    let xq = task.x_unlabeled.row(u);
                    let yq = src.predict_one(xq);
                    let d = Coreg::delta(src, xq, &yq);
                    if d > 0.0 && best.as_ref().is_none_or(|b| d > b.2) {
                        best = Some((u, yq, d));
                    }
                }
                if let Some((u, yq, _)) = best {
                    let xq = task.x_unlabeled.row(u).to_vec();
                    if dst == 2 {
                        h2.push(&xq, &yq);
                    } else {
                        h1.push(&xq, &yq);
                    }
                    taught.push(u);
                }
            }
            if taught.is_empty() {
                break; // converged: no confident candidate left
            }
            available.retain(|u| !taught.contains(u));
        }

        // Average the two views.
        let p1 = h1.predict(task.x_unlabeled);
        let p2 = h2.predict(task.x_unlabeled);
        p1.add_scaled(&p2, 1.0).map(|v| v * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssr::fixtures;

    #[test]
    fn beats_mean_baseline() {
        let m = Coreg::default();
        let err = fixtures::model_mae(&m, 60, 40, 5);
        let base = fixtures::mean_baseline_mae(60, 40, 5);
        assert!(err < base * 0.7, "COREG {err} vs baseline {base}");
    }

    #[test]
    fn produces_finite_predictions_with_tiny_label_set() {
        let m = Coreg { k: 3, rounds: 5, pool: 20 };
        let err = fixtures::model_mae(&m, 5, 30, 9);
        assert!(err.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xl, yl, xu, _) = fixtures::synthetic(40, 25, 4);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 11 };
        let a = Coreg::default().fit_predict(&task);
        let b = Coreg::default().fit_predict(&task);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rounds_reduces_to_knn_average() {
        let (xl, yl, xu, _) = fixtures::synthetic(30, 15, 8);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 1 };
        let coreg = Coreg { rounds: 0, ..Coreg::default() };
        let got = coreg.fit_predict(&task);
        let mut h1 = KnnRegressor::new(3, 2.0);
        let mut h2 = KnnRegressor::new(3, 5.0);
        h1.fit(&xl, &yl);
        h2.fit(&xl, &yl);
        let want = h1.predict(&xu).add_scaled(&h2.predict(&xu), 1.0).map(|v| v * 0.5);
        assert_eq!(got, want);
    }
}

//! obs-bench: prices the windowed-aggregation layer against the bare
//! metrics hot path.
//!
//! ```text
//! obs-bench [--seed N] [--iters N] [--rounds N] [--quick]
//!           [--emit-json path] [--baseline path]
//! ```
//!
//! The question the bench answers: does a dashboard polling
//! [`staq_obs::ops::report`] (which snapshots the whole registry, diffs
//! it into the window ring and assembles burn rates) slow down the
//! serving hot path — the histogram `record` call every request makes?
//!
//! Two interleaved variants, A/B/A/B across `--rounds` rounds so clock
//! drift and thermal state hit both equally:
//!
//! - **off** — a tight record loop with nobody polling.
//! - **on**  — the same loop while a poller thread assembles a report
//!   every 500µs with a 1ms window interval, i.e. a poll cadence ~20×
//!   harsher than any real dashboard.
//!
//! Reported: median ns/op per variant, the on/off overhead ratio, and
//! the standalone cost of one `report()` assembly. `--baseline` warns —
//! never fails — when the overhead ratio drifts beyond the ±6% noise
//! gate used by the other serving benches.

use staq_obs::{snapshot, AtomicHistogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static H_RECORD: AtomicHistogram = AtomicHistogram::new("bench.obs.record");

/// Baseline drift beyond this warns.
const NOISE_GATE: f64 = 0.06;

struct Args {
    seed: u64,
    iters: usize,
    rounds: usize,
    quick: bool,
    emit_json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        iters: 2_000_000,
        rounds: 9,
        quick: false,
        emit_json: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--iters" => args.iters = parse(&mut it, "--iters"),
            "--rounds" => args.rounds = parse(&mut it, "--rounds"),
            "--quick" => args.quick = true,
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--baseline" => args.baseline = Some(need(&mut it, "--baseline")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.quick {
        args.iters = args.iters.min(300_000);
        args.rounds = args.rounds.min(5);
    }
    args.rounds = args.rounds.max(1);
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: obs-bench [--seed N] [--iters N] [--rounds N] [--quick] \
         [--emit-json path] [--baseline path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Deterministic splitmix64 stream — the bench must not depend on rand.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// One round of the hot path: `iters` histogram records with a spread of
/// durations so every bucket range stays warm. Returns ns/op.
fn record_round(rng: &mut Rng, iters: usize) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        // 1µs .. ~1ms, log-ish spread via the low bits.
        let ns = 1_000 + (rng.next() % 1_000_000);
        H_RECORD.record_ns(ns);
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let obs = staq_obs::obs_enabled();
    println!(
        "obs-bench: {} iters x {} rounds per variant, obs {}",
        args.iters,
        args.rounds,
        if obs { "on" } else { "OFF (no-op registry)" }
    );

    // Aggressive window interval so nearly every poll closes a window —
    // the expensive path (full-registry snapshot + diff), not the cheap
    // read-only one.
    staq_obs::ops::set_interval(Duration::from_millis(1));

    let mut rng = Rng(args.seed);
    // Warm the histogram and the ring before timing anything.
    record_round(&mut rng, args.iters / 10 + 1);
    staq_obs::ops::force_tick();

    let stop = AtomicBool::new(false);
    let (mut off_ns, mut on_ns) = (Vec::new(), Vec::new());
    let mut polls = 0u64;
    std::thread::scope(|scope| {
        // Interleaved A/B: each round runs the quiet variant, then the
        // same workload with the poller alive.
        for _ in 0..args.rounds {
            off_ns.push(record_round(&mut rng, args.iters));

            stop.store(false, Ordering::Relaxed);
            let poller = scope.spawn(|| {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = staq_obs::ops::report(4);
                    n += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                n
            });
            on_ns.push(record_round(&mut rng, args.iters));
            stop.store(true, Ordering::Relaxed);
            polls += poller.join().expect("poller panicked");
        }
    });

    let off = median(&mut off_ns);
    let on = median(&mut on_ns);
    let overhead_ratio = on / off.max(1e-9);
    println!(
        "record hot path: {off:.1} ns/op quiet, {on:.1} ns/op under polling \
         ({overhead_ratio:.3}x, {polls} polls)"
    );

    // Standalone report assembly cost (includes a tick on most calls at
    // the 1ms interval).
    let reports = if args.quick { 200 } else { 1_000 };
    let t = Instant::now();
    for _ in 0..reports {
        let _ = staq_obs::ops::report(4);
    }
    let report_ns = t.elapsed().as_nanos() as f64 / reports as f64;
    println!("report assembly: {report_ns:.0} ns/report over {reports} calls");

    if let Some(path) = &args.baseline {
        compare_baseline(path, overhead_ratio);
    }

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"obs-bench\",\"seed\":{},\"quick\":{},\"obs_enabled\":{obs},\
             \"iters\":{},\"rounds\":{},\"polls\":{polls},\
             \"off_ns_per_op\":{off:.2},\"on_ns_per_op\":{on:.2},\
             \"overhead_ratio\":{overhead_ratio:.4},\"report_ns\":{report_ns:.0},\
             \"metrics\":{}}}",
            args.seed,
            args.quick,
            args.iters,
            args.rounds,
            snapshot().to_json(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

/// Warn-only gate on the headline ratio: CI stays green, the committed
/// JSON is the trend record.
fn compare_baseline(path: &str, fresh: f64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("baseline: cannot read {path}, skipping comparison");
        return;
    };
    match last_json_f64(&text, "overhead_ratio") {
        Some(old) if (fresh - old).abs() > old * NOISE_GATE => println!(
            "WARNING: overhead_ratio moved beyond the {:.0}% gate: {old:.3} -> {fresh:.3} \
             (baseline {path})",
            NOISE_GATE * 100.0
        ),
        Some(old) => println!(
            "baseline overhead_ratio: {old:.3} -> {fresh:.3} (within {:.0}%)",
            NOISE_GATE * 100.0
        ),
        None => println!("baseline: no overhead_ratio in {path}"),
    }
}

/// Extracts the last `"key":<number>` occurrence from our own flat JSON.
fn last_json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.rfind(&needle)?;
    let val = &text[at + needle.len()..];
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

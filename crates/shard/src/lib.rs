//! # staq-shard
//!
//! Multi-process sharded serving for dynamic access queries. One router
//! process speaks the staq-serve wire protocol on the front and fans
//! requests out to N backend `staq-serve` engine processes, sharded by
//! consistent hashing on [`PoiCategory`] — the paper's unit of cache
//! invalidation (§IV-F), so each shard's single-flight SSR cache stays
//! private to the categories it owns.
//!
//! ```text
//!                          ┌────────────┐
//!   clients ──wire v2────► │   router   │  shard = rendezvous(category)
//!                          └─────┬──────┘
//!              ┌───────────┬─────┴─────┬───────────┐
//!         conn pool    conn pool   conn pool   conn pool
//!              │           │           │           │
//!          backend 0   backend 1   backend 2   backend 3
//!         (staq-serve engines, supervised: respawned on crash)
//! ```
//!
//! Layers, bottom up:
//!
//! * [`hash`] — rendezvous (highest-random-weight) hashing from category
//!   to shard: adding a shard remaps ~1/N of the keys, and only ever onto
//!   the new shard.
//! * [`backend`] — what a shard runs: an in-process server over real TCP
//!   ([`ThreadBackend`], for tests and the self-contained bench) or a
//!   spawned `serve` daemon ([`ProcessBackend`], port-file discovery).
//! * [`pool`] — per-backend connection pool: reuse, bounded in-flight,
//!   retry-with-backoff on connect, generation tags so a respawned
//!   backend never receives a stale connection.
//! * [`supervisor`] — spawns and readiness-probes every backend before
//!   admitting traffic, monitors liveness, respawns crashed backends
//!   after a backoff, and owns the per-shard call path (retries for
//!   idempotent reads, fail-fast `Unavailable` while a shard is down).
//! * [`router`] — the front TCP server: routed single-shard paths for
//!   `Measures`/`Query`/`AddPoi`, broadcast for `AddBusRoute`,
//!   scatter-gather merge for `Stats`.
//!
//! Binaries: `shard` (the router daemon) and `staq-serve-bench` (the
//! load generator, moved here so `--shards N` can drive the router and
//! measure one-process vs N-process serving in a single run).
//!
//! [`PoiCategory`]: staq_synth::PoiCategory

pub mod backend;
pub mod hash;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod supervisor;

pub use backend::{Backend, ProcessBackend, ThreadBackend};
pub use hash::shard_for;
pub use pool::PoolConfig;
pub use router::{route, RouterConfig, RouterHandle};
pub use supervisor::{ShardSupervisor, SupervisorConfig};

//! Offline stand-in for `bytes`.
//!
//! Implements the subset the `staq-serve` codec uses with upstream
//! signatures — big-endian `put_*`/`get_*`, `BytesMut::split_to`/`freeze`,
//! `Buf for &[u8]` — so the real crate can be swapped back in without
//! touching call sites. No vectored or shared-slab tricks: `Bytes` is an
//! `Arc<[u8]>` window, `BytesMut` a growable vec.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Append-side writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte buffer with an amortized-O(1) front cursor.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before `start` were consumed by `advance`/`split_to`.
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), start: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact();
        BytesMut { data: head, start: 0 }
    }

    /// Freezes into an immutable, cheaply clonable buffer.
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.data.drain(..self.start);
        }
        Bytes { data: Arc::from(self.data.into_boxed_slice()), start: 0, end: usize::MAX }
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the allocation.
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
        self.compact();
    }
}

/// Immutable shared byte window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    /// `usize::MAX` means "to the end".
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    pub fn len(&self) -> usize {
        self.slice_ref().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slice_ref(&self) -> &[u8] {
        let end = self.end.min(self.data.len());
        &self.data[self.start..end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: usize::MAX }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.slice_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.slice_ref() == other.slice_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(-1.5);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_and_freeze() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"world");
        let c = frozen.clone();
        assert_eq!(frozen, c);
    }

    #[test]
    fn advance_moves_cursor() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4]);
        Buf::advance(&mut b, 2);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32();
    }
}

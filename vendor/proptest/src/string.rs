//! String strategies.
//!
//! Upstream generates strings matching arbitrary regexes; this stand-in
//! supports the pattern shape the workspace actually uses — a single
//! character class with a bounded repetition, `[chars]{lo,hi}` — and
//! errors loudly on anything else so a silent mismatch can't slip in.

use crate::strategy::{Strategy, TestRng};
use rand::RngExt;

/// Error for unsupported or malformed patterns.
#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "string_regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Strategy over strings matching `[class]{lo,hi}`.
pub struct RegexStringStrategy {
    alphabet: Vec<char>,
    lo: usize,
    hi: usize, // inclusive
}

/// Parses `[class]{lo,hi}` (escapes `\n`, `\t`, `\\`, `\"` and ranges
/// `a-z` supported inside the class; a trailing `-` is a literal).
pub fn string_regex(pattern: &str) -> Result<RegexStringStrategy, Error> {
    let err = |m: &str| Err(Error(format!("{m} in pattern {pattern:?}")));
    let rest = match pattern.strip_prefix('[') {
        Some(r) => r,
        None => return err("expected leading character class"),
    };
    let close = match rest.find(']') {
        Some(i) => i,
        None => return err("unterminated character class"),
    };
    let (class, tail) = (&rest[..close], &rest[close + 1..]);

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => return err("dangling escape"),
                }
            }
            c => c,
        };
        if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() {
            let end = chars[i + 2];
            if (c as u32) > (end as u32) {
                return err("inverted range");
            }
            for u in (c as u32)..=(end as u32) {
                alphabet.push(char::from_u32(u).expect("valid scalar"));
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return err("empty character class");
    }

    let counts = match tail.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
        Some(c) => c,
        None => return err("expected trailing {lo,hi} repetition"),
    };
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse(), b.trim().parse()),
        None => (counts.trim().parse(), counts.trim().parse()),
    };
    let (lo, hi): (usize, usize) = match (lo, hi) {
        (Ok(a), Ok(b)) if a <= b => (a, b),
        _ => return err("malformed repetition counts"),
    };
    Ok(RegexStringStrategy { alphabet, lo, hi })
}

impl Strategy for RegexStringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.0.random_range(self.lo..self.hi + 1);
        (0..len).map(|_| self.alphabet[rng.0.random_range(0..self.alphabet.len())]).collect()
    }
}

//! TCP server: accept loop + per-connection framing threads over the
//! shared worker pool.
//!
//! Threading model:
//!
//! ```text
//! acceptor ──spawns──► connection thread (one per client)
//!                        │  read frame → decode → Job{request, reply}
//!                        ▼
//!                 bounded job queue ──► worker 0..N  (shared AccessEngine)
//!                        ▲                   │
//!                        └── reply channel ◄─┘
//!                        │  encode → write frame
//! ```
//!
//! Connection threads only parse and write bytes; every engine touch
//! happens on a worker. Shutdown flips an atomic flag, nudges the
//! acceptor awake with a loopback connect, then drains and joins the
//! pool.

use crate::codec::{self, CodecError, ErrorCode, Request, Response, MAX_FRAME_LEN};
use crate::pool::{Job, WorkerPool};
use bytes::BytesMut;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use staq_core::AccessEngine;
use staq_obs::{trace, SpanContext};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue depth (backpressure point).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, queue_depth: 256 }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: WorkerPool,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes connections after their in-flight request,
    /// drains the job queue and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept() awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            h.join().expect("acceptor thread panicked");
        }
        let conns = std::mem::take(&mut *self.conns.lock());
        for c in conns {
            c.join().expect("connection thread panicked");
        }
        self.pool.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `cfg.addr` and serves `engine` until shutdown.
pub fn serve(engine: AccessEngine, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    serve_shared(Arc::new(engine), cfg)
}

/// Like [`serve`], for an engine that is already shared. The server's
/// delta log starts empty; to serve an [`RtEngine`] whose log must
/// survive a server restart, use [`serve_rt`].
pub fn serve_shared(
    engine: Arc<AccessEngine>,
    cfg: &ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_rt(Arc::new(staq_rt::RtEngine::new(engine)), cfg)
}

/// Like [`serve_shared`], over an existing [`RtEngine`] — the sequenced
/// delta log is shared with (and survives) the server.
///
/// [`RtEngine`]: staq_rt::RtEngine
pub fn serve_rt(rt: Arc<staq_rt::RtEngine>, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let pool = WorkerPool::spawn_rt(rt, cfg.workers, cfg.queue_depth);
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        let jobs = pool.sender();
        std::thread::Builder::new()
            .name("staq-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shutdown = Arc::clone(&shutdown);
                    let jobs = jobs.clone();
                    let handle = std::thread::Builder::new()
                        .name("staq-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, jobs, shutdown);
                        })
                        .expect("spawning connection thread");
                    conns.lock().push(handle);
                }
            })
            .expect("spawning acceptor thread")
    };

    Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor), pool, conns })
}

/// Serves one client until it disconnects, the protocol desyncs, or the
/// server shuts down.
fn handle_connection(
    mut stream: TcpStream,
    jobs: crossbeam::channel::Sender<Job>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Periodic read timeouts let the thread notice shutdown while idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf = BytesMut::with_capacity(4096);
    let mut scratch = [0u8; 16 * 1024];
    let mut out = BytesMut::with_capacity(4096);

    loop {
        // Drain every complete frame already buffered.
        loop {
            match codec::decode_request_full(&mut buf) {
                Ok(Some(decoded)) => {
                    // Continue the peer's trace, or become the edge and
                    // root a new one when serving directly (no router).
                    let _ctx = trace::attach(decoded.ctx);
                    let span = if decoded.ctx.is_some() {
                        trace::span("serve.request")
                    } else {
                        trace::root_span("serve.request")
                    };
                    let response = match dispatch(&jobs, decoded.request, span.context()) {
                        Some(r) => r,
                        None => Response::Error {
                            code: ErrorCode::Unavailable,
                            message: "server is shutting down".into(),
                        },
                    };
                    drop(span);
                    out.clear();
                    // Answer in whichever version the client spoke.
                    codec::encode_response_to(&response, decoded.version, &mut out);
                    stream.write_all(&out)?;
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is gone; tell the client why and hang up.
                    out.clear();
                    codec::encode_response(
                        &Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
                        &mut out,
                    );
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                if buf.len() + n > MAX_FRAME_LEN + 4 {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        CodecError::FrameTooLarge(buf.len() + n),
                    ));
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // idle tick: loop to re-check the shutdown flag
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Runs one request through the pool; `None` if the queue is closed.
/// `ctx` is the span the executing worker should parent its spans under
/// (the connection's `serve.request` span).
fn dispatch(
    jobs: &crossbeam::channel::Sender<Job>,
    request: Request,
    ctx: SpanContext,
) -> Option<Response> {
    let (reply_tx, reply_rx) = bounded(1);
    jobs.send(Job { request, reply: reply_tx, ctx, enqueued: std::time::Instant::now() }).ok()?;
    reply_rx.recv().ok()
}

//! Dynamic access queries — the analytical questions from the paper's
//! introduction, answered over a labeled measure set.
//!
//! 1. *"What is the average travel time to an important service, and how
//!    does this vary spatially and temporally?"* → [`AccessQuery::MeanAccess`]
//! 2. *"Considering the monetary cost and the inconvenience of transit,
//!    what is the overall accessibility?"* → the same query over GAC-labeled
//!    measures.
//! 3. *"Which geographic areas are most at risk?"* → [`AccessQuery::AtRisk`]
//! 4. *"Are the accessibility benefits fairly distributed?"* →
//!    [`AccessQuery::Fairness`]

use crate::classify::{classify_all, AccessClass};
use crate::fairness::{fairness_of, weighted_jain_index};
use crate::measures::{city_mean, ZoneMeasures};
use serde::{Deserialize, Serialize};
use staq_synth::ZoneId;

/// Demographic weighting for fairness queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemographicWeight {
    /// Every zone counts once.
    Uniform,
    /// Weight by resident population.
    Population,
    /// Weight by unemployed residents (job-center equity).
    Unemployed,
    /// Weight by clinically vulnerable residents (vaccination equity).
    Vulnerable,
    /// Weight by children (school equity).
    Children,
}

/// An analytical access query over one labeled measure set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessQuery {
    /// City summary: mean MAC and mean ACSD.
    MeanAccess,
    /// Per-zone accessibility classes.
    Classification,
    /// Zones whose MAC exceeds `threshold_factor` × the city mean — the
    /// "access deserts" a policy maker hunts for.
    AtRisk { threshold_factor: f64 },
    /// Jain fairness index over MAC, optionally demographically weighted.
    Fairness { weight: DemographicWeight },
    /// The `k` zones with the worst (highest) MAC.
    WorstZones { k: usize },
    /// Access measures at an arbitrary query point `(x, y)` (planar
    /// meters): the measures of the zone whose centroid is nearest. The
    /// spatially clustered, repeat-heavy query this repo's approximate
    /// serving mode interpolates.
    PointAccess { x: f64, y: f64 },
}

/// A query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryAnswer {
    MeanAccess {
        mean_mac: f64,
        mean_acsd: f64,
        n_zones: usize,
    },
    Classification(Vec<(ZoneId, AccessClass)>),
    AtRisk(Vec<ZoneId>),
    Fairness(f64),
    WorstZones(Vec<(ZoneId, f64)>),
    /// Measures at a query point; `zone` is the nearest-centroid zone the
    /// exact path resolved (or the nearest cached sample's zone on the
    /// interpolated path). `NaN` measures when no zone is labeled.
    PointAccess {
        zone: ZoneId,
        mac: f64,
        acsd: f64,
    },
}

impl AccessQuery {
    /// Answers the query against `measures`. For demographic weights, the
    /// zone list supplies populations; zones absent from `measures`
    /// contribute nothing.
    pub fn answer(&self, measures: &[ZoneMeasures], zones: &[staq_synth::Zone]) -> QueryAnswer {
        match self {
            AccessQuery::MeanAccess => QueryAnswer::MeanAccess {
                mean_mac: city_mean(measures, |m| m.mac),
                mean_acsd: city_mean(measures, |m| m.acsd),
                n_zones: measures.len(),
            },
            AccessQuery::Classification => {
                QueryAnswer::Classification(classify_all(measures, None))
            }
            AccessQuery::AtRisk { threshold_factor } => {
                let mean = city_mean(measures, |m| m.mac);
                let cut = mean * threshold_factor;
                QueryAnswer::AtRisk(
                    measures.iter().filter(|m| m.mac > cut).map(|m| m.zone).collect(),
                )
            }
            AccessQuery::Fairness { weight } => {
                let j = match weight {
                    DemographicWeight::Uniform => fairness_of(measures),
                    other => {
                        let vals: Vec<f64> = measures.iter().map(|m| m.mac).collect();
                        let w: Vec<f64> = measures
                            .iter()
                            .map(|m| {
                                let z = &zones[m.zone.idx()];
                                match other {
                                    DemographicWeight::Population => z.population,
                                    DemographicWeight::Unemployed => {
                                        z.population * z.demographics.pct_unemployed
                                    }
                                    DemographicWeight::Vulnerable => {
                                        z.population * z.demographics.pct_vulnerable
                                    }
                                    DemographicWeight::Children => {
                                        z.population * z.demographics.pct_children
                                    }
                                    DemographicWeight::Uniform => unreachable!(),
                                }
                            })
                            .collect();
                        weighted_jain_index(&vals, &w)
                    }
                };
                QueryAnswer::Fairness(j)
            }
            AccessQuery::WorstZones { k } => {
                let mut ranked: Vec<(ZoneId, f64)> =
                    measures.iter().map(|m| (m.zone, m.mac)).collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                ranked.truncate(*k);
                QueryAnswer::WorstZones(ranked)
            }
            AccessQuery::PointAccess { x, y } => {
                // Linear scan over measured zones: simple, exact, and the
                // deliberate latency contrast to the interpolated path.
                let mut best: Option<(f64, &ZoneMeasures)> = None;
                for m in measures {
                    let c = zones[m.zone.idx()].centroid;
                    let d2 = (c.x - x) * (c.x - x) + (c.y - y) * (c.y - y);
                    if best.is_none_or(|(bd, _)| d2 < bd) {
                        best = Some((d2, m));
                    }
                }
                match best {
                    Some((_, m)) => {
                        QueryAnswer::PointAccess { zone: m.zone, mac: m.mac, acsd: m.acsd }
                    }
                    None => QueryAnswer::PointAccess {
                        zone: ZoneId(u32::MAX),
                        mac: f64::NAN,
                        acsd: f64::NAN,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::{City, CityConfig};

    fn measures() -> Vec<ZoneMeasures> {
        vec![
            ZoneMeasures { zone: ZoneId(0), mac: 10.0, acsd: 1.0 },
            ZoneMeasures { zone: ZoneId(1), mac: 20.0, acsd: 2.0 },
            ZoneMeasures { zone: ZoneId(2), mac: 60.0, acsd: 3.0 },
        ]
    }

    fn zones() -> Vec<staq_synth::Zone> {
        City::generate(&CityConfig::tiny(1)).zones
    }

    #[test]
    fn mean_access_answer() {
        let a = AccessQuery::MeanAccess.answer(&measures(), &zones());
        match a {
            QueryAnswer::MeanAccess { mean_mac, mean_acsd, n_zones } => {
                assert!((mean_mac - 30.0).abs() < 1e-12);
                assert!((mean_acsd - 2.0).abs() < 1e-12);
                assert_eq!(n_zones, 3);
            }
            other => panic!("wrong answer kind {other:?}"),
        }
    }

    #[test]
    fn at_risk_finds_outliers() {
        let a = AccessQuery::AtRisk { threshold_factor: 1.5 }.answer(&measures(), &zones());
        match a {
            QueryAnswer::AtRisk(zs) => assert_eq!(zs, vec![ZoneId(2)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn worst_zones_ranked_descending() {
        let a = AccessQuery::WorstZones { k: 2 }.answer(&measures(), &zones());
        match a {
            QueryAnswer::WorstZones(zs) => {
                assert_eq!(zs.len(), 2);
                assert_eq!(zs[0].0, ZoneId(2));
                assert_eq!(zs[1].0, ZoneId(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fairness_weights_change_the_answer() {
        let zones = zones();
        let ms = vec![
            ZoneMeasures { zone: ZoneId(0), mac: 10.0, acsd: 0.0 },
            ZoneMeasures { zone: ZoneId(1), mac: 50.0, acsd: 0.0 },
        ];
        let uniform = match (AccessQuery::Fairness { weight: DemographicWeight::Uniform })
            .answer(&ms, &zones)
        {
            QueryAnswer::Fairness(j) => j,
            _ => unreachable!(),
        };
        let pop = match (AccessQuery::Fairness { weight: DemographicWeight::Population })
            .answer(&ms, &zones)
        {
            QueryAnswer::Fairness(j) => j,
            _ => unreachable!(),
        };
        assert!(uniform < 1.0);
        assert!(pop > 0.0 && pop <= 1.0);
        // Different zone populations make the two differ.
        assert!((uniform - pop).abs() > 1e-9 || zones[0].population == zones[1].population);
    }

    #[test]
    fn point_access_resolves_nearest_measured_zone() {
        let zones = zones();
        let near = zones[1].centroid;
        let a = AccessQuery::PointAccess { x: near.x + 1.0, y: near.y - 1.0 }
            .answer(&measures(), &zones);
        match a {
            QueryAnswer::PointAccess { zone, mac, acsd } => {
                assert_eq!(zone, ZoneId(1));
                assert_eq!(mac, 20.0);
                assert_eq!(acsd, 2.0);
            }
            other => panic!("{other:?}"),
        }
        // No measures: NaN sentinel, never a panic.
        match (AccessQuery::PointAccess { x: 0.0, y: 0.0 }).answer(&[], &zones) {
            QueryAnswer::PointAccess { mac, .. } => assert!(mac.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classification_answer_covers_all_zones() {
        let a = AccessQuery::Classification.answer(&measures(), &zones());
        match a {
            QueryAnswer::Classification(cs) => assert_eq!(cs.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}

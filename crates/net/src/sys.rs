//! Raw OS interfaces behind the poller: direct `extern "C"` declarations
//! against the libc that std already links, so no external crate is
//! needed. Only the handful of calls the reactor uses are declared —
//! `epoll` (Linux), `poll` (portable fallback) and `RLIMIT_NOFILE`
//! for the high-connection-count bench.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
pub type nfds_t = usize;

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
pub mod epoll {
    use super::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel ABI layout: packed on x86-64, natural elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub u64: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

// ----------------------------------------------------------------- poll

pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

extern "C" {
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
}

// --------------------------------------------------------------- rlimit

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

/// Current (soft, hard) open-file limits.
pub fn nofile_limit() -> std::io::Result<(u64, u64)> {
    let mut r = rlimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut r) } != 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok((r.rlim_cur, r.rlim_max))
}

/// Raises the soft open-file limit toward `want` (capped at the hard
/// limit) and returns the soft limit now in effect. Benchmarks opening
/// thousands of sockets call this first and scale themselves to the
/// returned value.
pub fn raise_nofile_limit(want: u64) -> std::io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let target = want.min(hard);
    let r = rlimit { rlim_cur: target, rlim_max: hard };
    if unsafe { setrlimit(RLIMIT_NOFILE, &r) } != 0 {
        return Ok(soft); // leave the old limit in place rather than fail
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_is_reported_and_raisable_to_itself() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Asking for what we already have must never lower the limit.
        let now = raise_nofile_limit(soft).unwrap();
        assert!(now >= soft);
    }
}

//! The observability contract over the wire: a warm query burst against a
//! real loopback server must come back countable through the `Stats`
//! frame's embedded metrics snapshot — per-kind server-side latency
//! histograms, engine cache counters, and the pipeline stage timers the
//! cold run left behind.
//!
//! The obs registry is process-global and the test harness runs many
//! tests in one binary, so every count here is asserted as a *delta*
//! between a baseline stats frame and one taken after the burst — an
//! absolute assertion would race any other test touching the same
//! metric (see the registry module docs in staq-obs).
#![cfg(not(feature = "obs-off"))]

use staq_obs::MetricsSnapshot;
use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ServerConfig};

fn counter(m: &MetricsSnapshot, name: &str) -> u64 {
    m.counter(name).unwrap_or(0)
}

fn hist_count(m: &MetricsSnapshot, name: &str) -> u64 {
    m.histogram(name).map_or(0, |h| h.count)
}

#[test]
fn stats_frame_carries_server_side_latency_histograms() {
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let mut c = Client::connect(server.addr()).expect("connect");

    // Baseline before this test's own traffic (the frame itself also
    // proves the snapshot codec round-trips over the wire).
    let before = c.stats().expect("baseline stats").metrics;

    // One cold touch (runs the SSR pipeline), then a warm burst.
    c.measures(PoiCategory::School).expect("cold measures");
    const BURST: u64 = 50;
    for _ in 0..BURST {
        c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("warm query");
        c.query(&AccessQuery::WorstZones { k: 5 }, PoiCategory::School).expect("warm query");
    }

    let stats = c.stats().expect("stats");
    let m = &stats.metrics;

    // Per-kind server-side latency histograms grew by the burst and stay
    // ordered. (Shape properties are absolute; counts are deltas.)
    let q = m.histogram("serve.request.query").expect("query latency histogram");
    let q_delta = q.count - hist_count(&before, "serve.request.query");
    assert!(q_delta >= 2 * BURST, "burst must be visible server-side, got +{q_delta}");
    assert!(q.p50_ns > 0, "recorded latencies are nonzero");
    assert!(q.p50_ns <= q.p95_ns && q.p95_ns <= q.p99_ns, "quantiles must be ordered");
    assert!(q.max_ns >= q.p99_ns);
    assert!(!q.buckets.is_empty(), "sparse buckets ship with the frame");
    assert!(
        hist_count(m, "serve.request.measures") - hist_count(&before, "serve.request.measures")
            >= 1
    );

    // The registry's request counter covers at least what the pool
    // reported served (both all-kind; the registry is process-global so
    // it may lead by other servers' traffic, never lag).
    assert!(counter(m, "serve.requests") >= stats.requests_served);

    // Engine cache counters: one miss (the cold touch), a burst of hits.
    assert!(counter(m, "engine.cache.misses") - counter(&before, "engine.cache.misses") >= 1);
    assert!(counter(m, "engine.cache.hits") - counter(&before, "engine.cache.hits") >= 2 * BURST);

    // The cold pipeline run left stage timings and router/labeling
    // counters behind. `artifacts` records at engine *construction* —
    // before the baseline frame — so it only gets an existence check.
    for stage in ["todam", "features", "sampling", "labeling", "train"] {
        let name = format!("pipeline.stage.{stage}");
        let delta = hist_count(m, &name) - hist_count(&before, &name);
        assert!(delta >= 1, "stage {stage} must have run, got +{delta}");
    }
    assert!(hist_count(m, "pipeline.stage.artifacts") >= 1);
    assert!(counter(m, "raptor.queries") > counter(&before, "raptor.queries"));
    assert!(counter(m, "label.zones") > counter(&before, "label.zones"));

    // The snapshot survives its JSON interchange form intact.
    let reparsed =
        staq_obs::MetricsSnapshot::from_json(&m.to_json()).expect("snapshot JSON parses back");
    assert_eq!(&reparsed, m);

    server.shutdown();
}

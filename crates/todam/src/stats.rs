//! Matrix-composition accounting (paper Table I).

use crate::build::TodamSpec;
use serde::{Deserialize, Serialize};
use staq_synth::{City, PoiCategory};

/// One Table I row: full vs gravity size for one (city, category).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    pub city: String,
    pub category: String,
    pub n_pois: usize,
    pub full: u64,
    pub gravity: u64,
    pub reduction_pct: f64,
}

impl MatrixStats {
    /// Builds the gravity matrix and measures it against the full size.
    pub fn measure(city: &City, spec: &TodamSpec, category: PoiCategory) -> MatrixStats {
        let m = spec.build(city, category);
        MatrixStats {
            city: city.config.name.clone(),
            category: category.label().to_string(),
            n_pois: city.pois_of(category).len(),
            full: m.full_size,
            gravity: m.n_trips() as u64,
            reduction_pct: m.reduction_pct(),
        }
    }

    /// All four categories for one city (a Table I half).
    pub fn measure_all(city: &City, spec: &TodamSpec) -> Vec<MatrixStats> {
        PoiCategory::ALL.iter().map(|&c| MatrixStats::measure(city, spec, c)).collect()
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} {:<11} |P|={:<5} full={:<12} gravity={:<10} red={:.1}%",
            self.city, self.category, self.n_pois, self.full, self.gravity, self.reduction_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::CityConfig;

    #[test]
    fn measures_all_categories() {
        let city = City::generate(&CityConfig::small(42));
        let rows = MatrixStats::measure_all(&city, &TodamSpec::default());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.gravity <= r.full);
            assert!((0.0..=100.0).contains(&r.reduction_pct));
            assert!(r.n_pois > 0);
        }
    }

    #[test]
    fn larger_poi_sets_reduce_more() {
        // The Table I pattern: more POIs per category -> thinner sampling.
        let city = City::generate(&CityConfig::small(42));
        let rows = MatrixStats::measure_all(&city, &TodamSpec::default());
        let school = rows.iter().find(|r| r.category == "School").unwrap();
        let job = rows.iter().find(|r| r.category == "Job Center").unwrap();
        assert!(
            school.reduction_pct > job.reduction_pct,
            "school {} <= job {}",
            school.reduction_pct,
            job.reduction_pct
        );
    }

    #[test]
    fn display_formats_a_row() {
        let city = City::generate(&CityConfig::tiny(1));
        let r = MatrixStats::measure(&city, &TodamSpec::default(), PoiCategory::School);
        let s = r.to_string();
        assert!(s.contains("School"));
        assert!(s.contains("red="));
    }
}

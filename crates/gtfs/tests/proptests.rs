//! Property tests for the GTFS crate: the CSV codec and time parser must
//! round-trip arbitrary content, and the feed index must agree with brute
//! force.

use proptest::prelude::*;
use staq_gtfs::csv;
use staq_gtfs::time::Stime;

/// Cells with every CSV-hostile character.
fn cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ,\"\n'#;-]{0,12}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_write_parse_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec(cell(), 3), 1..20
    )) {
        let header = ["a", "b", "c"];
        let text = csv::write(&header, &rows);
        let table = csv::parse(&text).unwrap();
        prop_assert_eq!(table.header, vec!["a", "b", "c"]);
        // A trailing fully-empty row is the one legitimate loss: it is
        // indistinguishable from a trailing blank line.
        let mut expect = rows.clone();
        while expect.last().is_some_and(|r| r.iter().all(String::is_empty)) {
            expect.pop();
        }
        prop_assert_eq!(table.rows, expect);
    }

    #[test]
    fn stime_roundtrip(total in 0u32..200_000) {
        let t = Stime(total);
        let back = Stime::parse(&t.to_string()).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn stime_ordering_matches_seconds(a in 0u32..200_000, b in 0u32..200_000) {
        prop_assert_eq!(Stime(a) < Stime(b), a < b);
        prop_assert_eq!(Stime(a).until(Stime(b)), b.saturating_sub(a));
    }

    #[test]
    fn plus_minus_are_inverse_when_no_saturation(t in 0u32..100_000, d in 0u32..50_000) {
        let fwd = Stime(t).plus(d);
        prop_assert_eq!(fwd.minus(d), Stime(t));
    }
}

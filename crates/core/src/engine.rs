//! The dynamic access-query engine.
//!
//! The paper's motivation (§I): planners "need to operate in a dynamic
//! environment and test new policy scenarios, such as optimally locating a
//! new school ... or introducing new bus stops to avoid access deserts",
//! which means the TODAM and its artifacts must be recomputable after every
//! spatio-temporal edit — cheaply.
//!
//! [`AccessEngine`] owns a city and its offline artifacts and supports:
//!
//! * answering [`AccessQuery`]s through the SSR pipeline (fast) with result
//!   caching per (category, cost);
//! * **scenario edits** — [`AccessEngine::add_poi`] (no network change: hop
//!   trees stay valid, only that category's TODAM/labels refresh) and
//!   [`AccessEngine::add_bus_route`] (schedule change: the GTFS feed is
//!   extended and only the zones whose walkshed touches a new-route stop
//!   get their hop trees rebuilt).
//!
//! # Concurrency model
//!
//! Every method takes `&self`, so one engine can be shared (`Arc`) across a
//! server's worker pool:
//!
//! * City + artifacts live under a [`RwLock`]: queries take the read path
//!   and run concurrently; scenario edits take the write path.
//! * The per-category result cache is **single-flight**: when N threads ask
//!   for an uncached category at once, exactly one runs the SSR pipeline
//!   while the rest wait on a per-category latch and share the
//!   `Arc<PipelineResult>` it publishes. [`AccessEngine::pipeline_runs`]
//!   counts actual pipeline executions so this is assertable.
//! * Edits mutate state first, then invalidate: each category carries an
//!   epoch, bumped on invalidation. An in-flight compute that started
//!   before an edit still unblocks its waiters (they observe the pre-edit
//!   snapshot, which is linearizable for reads concurrent with the edit)
//!   but is *not* promoted into the cache, so no post-edit reader can see
//!   a stale result.
//!
//! Lock order: the cache mutex is never held across a pipeline run or while
//! acquiring the state lock.

use crate::artifacts::OfflineArtifacts;
use crate::config::PipelineConfig;
use crate::pipeline::{ssr_train_infer, PipelineResult, SsrPipeline};
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};
use staq_access::{AccessQuery, QueryAnswer, ZoneMeasures};
use staq_geom::{KdTree, Point};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::Delta;
use staq_obs::Counter;
use staq_synth::{City, Poi, PoiCategory, PoiId, ZoneId};
use staq_todam::{LabelEngine, ZoneStats};
use staq_transit::{AccessCost, CostKind, Journey, OverlayStats, Raptor, TransitNetwork};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Warm reads: a published result served straight from the cache.
static CACHE_HITS: Counter = Counter::new("engine.cache.hits");
/// Cold reads that ran the SSR pipeline.
static CACHE_MISSES: Counter = Counter::new("engine.cache.misses");
/// Reads that joined another thread's in-flight compute (single-flight).
static CACHE_JOINS: Counter = Counter::new("engine.cache.joins");
/// Category invalidations from scenario edits (epoch bumps).
static CACHE_INVALIDATIONS: Counter = Counter::new("engine.cache.invalidations");

/// The mutable world state: what scenario edits rewrite.
struct EngineState {
    city: City,
    artifacts: OfflineArtifacts,
}

/// Latch for one in-flight pipeline run. The computing thread publishes
/// the shared result and wakes every waiter.
struct Flight {
    result: Mutex<Option<Arc<PipelineResult>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight { result: Mutex::new(None), done: Condvar::new() })
    }

    fn publish(&self, result: Arc<PipelineResult>) {
        *self.result.lock() = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Arc<PipelineResult> {
        let mut slot = self.result.lock();
        loop {
            if let Some(r) = slot.as_ref() {
                return Arc::clone(r);
            }
            self.done.wait(&mut slot);
        }
    }
}

/// Cache slot per category: either a published result or a compute in
/// flight that late arrivals should join instead of duplicating.
enum Slot {
    Ready(Arc<PipelineResult>),
    Pending(Arc<Flight>),
}

#[derive(Default)]
struct Cache {
    slots: HashMap<PoiCategory, Slot>,
    /// Bumped on every invalidation of the category; a compute is only
    /// promoted to `Ready` if the epoch it started under is still current.
    epochs: HashMap<PoiCategory, u64>,
}

/// Read guard over the engine's city. Derefs to [`City`]; holding it blocks
/// scenario edits, so keep it short-lived.
pub struct CityRef<'a> {
    guard: RwLockReadGuard<'a, EngineState>,
}

impl Deref for CityRef<'_> {
    type Target = City;
    fn deref(&self) -> &City {
        &self.guard.city
    }
}

/// A stateful engine over one (mutable) city, shareable across threads.
pub struct AccessEngine {
    config: PipelineConfig,
    /// Zones never change across scenario edits (edits add POIs and routes),
    /// so the zone lookup tree is built once here instead of per `add_poi`.
    zone_tree: KdTree,
    state: RwLock<EngineState>,
    cache: Mutex<Cache>,
    pipeline_runs: AtomicU64,
}

impl AccessEngine {
    /// Builds offline artifacts for `city` (the expensive, once-per-interval
    /// step).
    pub fn new(city: City, config: PipelineConfig) -> Self {
        config.validate().expect("invalid engine config");
        let artifacts = OfflineArtifacts::build(&city, &config.todam.interval, &config.isochrone);
        let zone_tree = KdTree::build(&city.zone_points());
        AccessEngine {
            config,
            zone_tree,
            state: RwLock::new(EngineState { city, artifacts }),
            cache: Mutex::new(Cache::default()),
            pipeline_runs: AtomicU64::new(0),
        }
    }

    /// The current city state, behind a read guard.
    pub fn city(&self) -> CityRef<'_> {
        CityRef { guard: self.state.read() }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of SSR pipeline executions so far. Single-flight means this
    /// advances once per (category, edit-generation), no matter how many
    /// threads demand the result concurrently.
    pub fn pipeline_runs(&self) -> u64 {
        self.pipeline_runs.load(Ordering::Relaxed)
    }

    /// Categories with a published (warm) cache entry.
    pub fn cached_categories(&self) -> Vec<PoiCategory> {
        let cache = self.cache.lock();
        let mut cats: Vec<PoiCategory> = cache
            .slots
            .iter()
            .filter_map(|(c, s)| matches!(s, Slot::Ready(_)).then_some(*c))
            .collect();
        cats.sort_by_key(|c| *c as u32);
        cats
    }

    /// SSR measures for one category, cached until the next scenario edit.
    ///
    /// Concurrent callers for a cold category coalesce into one pipeline
    /// run; everyone gets the same shared result.
    pub fn measures(&self, category: PoiCategory) -> Arc<PipelineResult> {
        let mut span = staq_obs::trace::span("engine.measures");
        // Fast path / join path under the cache lock.
        let (flight, start_epoch) = {
            let mut cache = self.cache.lock();
            match cache.slots.get(&category) {
                Some(Slot::Ready(r)) => {
                    CACHE_HITS.inc();
                    span.attr("cache_hit", 1);
                    return Arc::clone(r);
                }
                Some(Slot::Pending(f)) => {
                    let f = Arc::clone(f);
                    drop(cache);
                    CACHE_JOINS.inc();
                    span.attr("cache_join", 1);
                    return f.wait();
                }
                None => {
                    CACHE_MISSES.inc();
                    span.attr("cache_miss", 1);
                    let epoch = *cache.epochs.entry(category).or_insert(0);
                    let flight = Flight::new();
                    cache.slots.insert(category, Slot::Pending(Arc::clone(&flight)));
                    (flight, epoch)
                }
            }
        };

        // We own the compute. Run the pipeline under the state *read* lock
        // so edits queue behind it but other queries proceed.
        let result = {
            let state = self.state.read();
            Arc::new(
                SsrPipeline::new(&state.city, &state.artifacts, self.config.clone()).run(category),
            )
        };
        self.pipeline_runs.fetch_add(1, Ordering::Relaxed);
        flight.publish(Arc::clone(&result));

        // Promote to Ready only if no edit invalidated us mid-run.
        let mut cache = self.cache.lock();
        let current = cache.epochs.get(&category).copied().unwrap_or(0);
        let ours = matches!(
            cache.slots.get(&category),
            Some(Slot::Pending(f)) if Arc::ptr_eq(f, &flight)
        );
        if ours {
            if current == start_epoch {
                cache.slots.insert(category, Slot::Ready(Arc::clone(&result)));
            } else {
                cache.slots.remove(&category);
            }
        }
        result
    }

    /// Answers an access query for one category via SSR measures.
    pub fn query(&self, q: &AccessQuery, category: PoiCategory) -> QueryAnswer {
        let predicted = self.measures(category);
        let state = self.state.read();
        q.answer(&predicted.predicted, &state.city.zones)
    }

    /// Answers `q` against an externally supplied measure vector (e.g. one
    /// scenario's [`Self::what_if`] outcome) using this engine's zone set
    /// for demographic weights.
    pub fn answer_with(&self, measures: &[ZoneMeasures], q: &AccessQuery) -> QueryAnswer {
        let state = self.state.read();
        q.answer(measures, &state.city.zones)
    }

    /// Adds a POI (e.g. a candidate vaccination site). No transit change:
    /// only the category's cached result is invalidated. Returns the new
    /// POI's id.
    pub fn add_poi(&self, category: PoiCategory, pos: Point) -> PoiId {
        let zone = ZoneId(self.zone_tree.nearest(&pos).expect("city has zones").item);
        let id = {
            let mut state = self.state.write();
            let id = PoiId(state.city.pois.len() as u32);
            state.city.pois.push(Poi { id, category, pos, zone });
            id
        };
        // Invalidate after the state change so no reader can cache the
        // pre-edit world under the post-edit epoch.
        let mut cache = self.cache.lock();
        *cache.epochs.entry(category).or_insert(0) += 1;
        cache.slots.remove(&category);
        CACHE_INVALIDATIONS.inc();
        id
    }

    /// Adds a new bus route calling at `stops_at` (in order) with the given
    /// peak headway, weekdays only. Returns the number of zones whose hop
    /// trees were incrementally rebuilt.
    ///
    /// Compatibility wrapper over [`apply_delta`](Self::apply_delta) with
    /// [`Delta::AddRoute`] — serve/shard and the streaming path share one
    /// edit implementation. Panics on fewer than two stops (the historical
    /// contract; the delta path returns `Err` instead).
    pub fn add_bus_route(&self, stops_at: &[Point], peak_headway_s: u32) -> usize {
        assert!(stops_at.len() >= 2, "a route needs at least two stops");
        self.apply_delta(&Delta::AddRoute { stops: stops_at.to_vec(), headway_s: peak_headway_s })
            .expect("add_bus_route delta rejected")
            .zones_rebuilt
    }

    /// Applies one streaming delta to the live world, **incrementally**: the
    /// feed index is mutated in place (no rebuild), then exactly the state
    /// the delta invalidates is refreshed.
    ///
    /// Invalidation matrix:
    ///
    /// * `ServiceAlert` — advisory; nothing structural changed, no caches
    ///   touched, no locks taken.
    /// * All structural deltas — hop trees are rebuilt only for zones whose
    ///   stored walking isochrone contains a touched stop (crow-flies
    ///   pre-filter, exact isochrone test), and every category's result
    ///   epoch is bumped so neither cached nor in-flight results survive.
    ///
    /// Rejected deltas (unknown ids, bad geometry) leave the world
    /// untouched.
    pub fn apply_delta(&self, delta: &Delta) -> Result<DeltaApplied, String> {
        let mut span = staq_obs::trace::span("engine.apply_delta");
        span.attr("structural", delta.is_structural() as u64);
        if !delta.is_structural() {
            return Ok(DeltaApplied { structural: false, zones_rebuilt: 0, invalidated: 0 });
        }
        let zones_rebuilt = {
            let mut state = self.state.write();
            let state = &mut *state;
            let bus_speed = state.city.config.bus_speed_mps;
            let outcome = state.city.feed.apply_delta(delta, bus_speed)?;

            // Incremental hop-tree rebuild: zones whose walkshed reaches a
            // touched stop (crow-flies pre-filter by max walking radius,
            // exact test via the stored isochrone).
            let radius = self.config.isochrone.max_radius_m();
            let mut affected: Vec<ZoneId> = Vec::new();
            for z in 0..state.city.n_zones() {
                let zid = ZoneId(z as u32);
                let iso = state.artifacts.store.isochrone(zid);
                let touched = outcome.touched_stops.iter().any(|p| {
                    state.city.zone_centroid(zid).dist(p) <= radius * 1.5 && iso.contains(p)
                });
                if touched {
                    affected.push(zid);
                }
            }
            state.artifacts.store.rebuild_zones(&state.city, &affected);
            affected.len()
        };
        // Schedule changed: every category is stale. Bump all known epochs
        // so no in-flight compute gets promoted either.
        let mut cache = self.cache.lock();
        let mut invalidated = 0usize;
        for epoch in cache.epochs.values_mut() {
            *epoch += 1;
            invalidated += 1;
            CACHE_INVALIDATIONS.inc();
        }
        cache.slots.clear();
        Ok(DeltaApplied { structural: true, zones_rebuilt, invalidated })
    }

    /// Evaluates `scenarios` (each a list of deltas) against the current
    /// world for one category, side by side, **without mutating anything**.
    ///
    /// One immutable base is shared by all scenarios: the cached base
    /// measures supply the TODAM, the L/U split, and the feature matrices
    /// (demand is POI-driven, so the TODAM is exact under schedule deltas;
    /// reusing base hop-tree features is the documented approximation), and
    /// one base transit network supplies copy-on-write overlays. Per
    /// scenario, only labeling `L` over the overlay and retraining the SSR
    /// model run — the expensive artifacts are never cloned, which is what
    /// makes K scenarios cheaper than K engines.
    ///
    /// An empty scenario reproduces the base measures bit-for-bit.
    pub fn what_if(
        &self,
        category: PoiCategory,
        scenarios: &[Vec<Delta>],
    ) -> Result<Vec<ScenarioOutcome>, String> {
        let mut span = staq_obs::trace::span("engine.what_if");
        span.attr("scenarios", scenarios.len() as u64);
        let base = self.measures(category);
        let state = self.state.read();
        let bus_speed = state.city.config.bus_speed_mps;
        let net = TransitNetwork::with_defaults(&state.city.road, &state.city.feed);
        let mut out = Vec::with_capacity(scenarios.len());
        for deltas in scenarios {
            let (overlay, overlay_stats) = net.overlay(deltas, bus_speed)?;
            let cost_model = match self.config.cost {
                CostKind::Jt => AccessCost::jt(),
                CostKind::Gac => AccessCost::gac(),
            };
            let labeler = LabelEngine::with_network(
                &state.city,
                overlay,
                cost_model,
                self.config.todam.interval.clone(),
            );
            let labeled_stats: Vec<ZoneStats> = labeler
                .label_zones(&base.matrix, &base.labeled)
                .into_iter()
                .map(|s| s.expect("base-labeled zone must relabel under the overlay"))
                .collect();
            let predicted = ssr_train_infer(
                &state.city,
                &self.config,
                &base.labeled,
                &base.unlabeled,
                &base.x_labeled,
                &base.x_unlabeled,
                &labeled_stats,
            );
            out.push(ScenarioOutcome { predicted, labeled_stats, overlay: overlay_stats });
        }
        Ok(out)
    }

    /// Point-to-point journey planning against the live timetable (the
    /// state every applied delta has already rewritten). With a transfer
    /// cap the answer is the single fastest journey using at most
    /// `max_transfers` transfers; without one it is the whole Pareto
    /// (arrival, transfers) frontier, transfers ascending.
    pub fn plan(
        &self,
        origin: Point,
        dest: Point,
        depart: Stime,
        day: DayOfWeek,
        max_transfers: Option<u8>,
    ) -> Vec<Journey> {
        let mut span = staq_obs::trace::span("engine.plan");
        let state = self.state.read();
        let net = TransitNetwork::with_defaults(&state.city.road, &state.city.feed);
        let router = Raptor::new(&net);
        let journeys = match max_transfers {
            Some(k) => vec![router.query_max_transfers(&origin, &dest, depart, day, k)],
            None => router.query_pareto(&origin, &dest, depart, day),
        };
        span.attr("journeys", journeys.len() as u64);
        journeys
    }
}

/// What [`AccessEngine::apply_delta`] did — the invalidation receipt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaApplied {
    /// False for advisory deltas (nothing below changed).
    pub structural: bool,
    /// Zones whose hop trees were incrementally rebuilt.
    pub zones_rebuilt: usize,
    /// Categories whose cached/in-flight results were invalidated.
    pub invalidated: usize,
}

/// One counterfactual scenario's evaluation from [`AccessEngine::what_if`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Access measures per zone under the scenario (same zone set as the
    /// base measures: truth for `L`, inference for `U`).
    pub predicted: Vec<ZoneMeasures>,
    /// Counterfactual ground-truth stats for the labeled zones.
    pub labeled_stats: Vec<ZoneStats>,
    /// What the copy-on-write overlay materialized.
    pub overlay: OverlayStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_ml::ModelKind;
    use staq_synth::CityConfig;
    use staq_todam::TodamSpec;

    fn engine() -> AccessEngine {
        let city = City::generate(&CityConfig::small(42));
        let config = PipelineConfig {
            beta: 0.25,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        AccessEngine::new(city, config)
    }

    #[test]
    fn queries_answer_from_ssr_measures() {
        let e = engine();
        let a = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        match a {
            QueryAnswer::MeanAccess { mean_mac, n_zones, .. } => {
                assert!(mean_mac > 0.0);
                assert!(n_zones > 0);
            }
            other => panic!("{other:?}"),
        }
        // Second call hits the cache: the very same result object, and no
        // extra pipeline execution.
        let r1 = e.measures(PoiCategory::School);
        let r2 = e.measures(PoiCategory::School);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(e.pipeline_runs(), 1);
    }

    #[test]
    fn add_poi_invalidates_only_its_category() {
        let e = engine();
        let _ = e.measures(PoiCategory::School);
        let _ = e.measures(PoiCategory::Hospital);
        assert_eq!(e.cached_categories().len(), 2);
        let center = e.city().cores[0];
        let id = e.add_poi(PoiCategory::School, center);
        assert_eq!(id.idx(), e.city().pois.len() - 1);
        assert_eq!(e.cached_categories(), vec![PoiCategory::Hospital]);
    }

    #[test]
    fn concurrent_cold_reads_run_pipeline_once() {
        let e = Arc::new(engine());
        let results: Vec<Arc<PipelineResult>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let e = Arc::clone(&e);
                    scope.spawn(move |_| e.measures(PoiCategory::School))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(e.pipeline_runs(), 1, "single-flight must coalesce cold reads");
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all callers share one result");
        }
    }

    #[test]
    fn adding_a_poi_improves_nearby_access() {
        // Causal check against *ground truth* (SSR predictions add model
        // noise that could mask a small improvement): a hospital placed at
        // the worst-served zone lowers mean access cost.
        use crate::naive::NaiveResult;
        use staq_transit::CostKind;

        let e = engine();
        let spec = e.config().todam.clone();
        let before = NaiveResult::compute(&e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst =
            *before.measures.iter().max_by(|a, b| a.mac.partial_cmp(&b.mac).unwrap()).unwrap();
        let pos = e.city().zone_centroid(worst.zone);
        e.add_poi(PoiCategory::Hospital, pos);
        let after = NaiveResult::compute(&e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst_after =
            after.measures.iter().find(|m| m.zone == worst.zone).expect("worst zone still labeled");
        // Note: the *city mean* MAC may legitimately rise — under gravity
        // trip redistribution a new attractor pulls trips toward itself from
        // zones it is far from. The zone that received the hospital,
        // however, must improve: its nearest hospital is now at distance
        // ~0 and dominates its attractiveness.
        assert!(
            worst_after.mac < worst.mac,
            "hospital at the worst zone must improve that zone: {} -> {}",
            worst.mac,
            worst_after.mac
        );
    }

    #[test]
    fn classification_query_covers_predicted_zones() {
        let e = engine();
        let n = e.measures(PoiCategory::School).predicted.len();
        match e.query(&AccessQuery::Classification, PoiCategory::School) {
            QueryAnswer::Classification(classes) => {
                assert_eq!(classes.len(), n);
                // All four quadrants exist in a heterogeneous city... at
                // least two distinct classes must appear.
                let distinct: std::collections::HashSet<_> =
                    classes.iter().map(|(_, c)| c.label()).collect();
                assert!(distinct.len() >= 2, "degenerate classification {distinct:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn add_bus_route_rebuilds_affected_zones() {
        let e = engine();
        let _ = e.measures(PoiCategory::School);
        let (a, b) = {
            let city = e.city();
            (city.zones[0].centroid, city.cores[0])
        };
        let mid = a.midpoint(&b);
        let n = e.add_bus_route(&[a, mid, b], 600);
        assert!(n > 0, "route through the city must touch some walkshed");
        assert!(e.cached_categories().is_empty(), "schedule edits invalidate all caches");
        // Engine still answers queries afterwards.
        let ans = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        assert!(matches!(ans, QueryAnswer::MeanAccess { .. }));
    }

    #[test]
    #[should_panic(expected = "at least two stops")]
    fn route_needs_two_stops() {
        let e = engine();
        e.add_bus_route(&[Point::new(0.0, 0.0)], 600);
    }
}

//! Online feature-generation cost per (z_i, p_j) pair — the paper analyzes
//! this as O(|Z| log |Z| + h |Z|) (§IV-E).

use criterion::{criterion_group, criterion_main, Criterion};
use staq_gtfs::time::TimeInterval;
use staq_hoptree::{aggregate, FeatureExtractor, HopTreeStore};
use staq_road::IsochroneParams;
use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
use staq_todam::TodamSpec;
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let store = HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
    let fx = FeatureExtractor::new(&city, &store);
    let m = TodamSpec::default().build(&city, PoiCategory::School);
    let poi = *city.pois_of(PoiCategory::School)[0];

    let mut g = c.benchmark_group("features");
    g.sample_size(20);
    let mut z = 0u32;
    g.bench_function("od_feature_vector", |b| {
        b.iter(|| {
            z = (z + 1) % city.n_zones() as u32;
            black_box(fx.features(ZoneId(z), &poi.pos, poi.zone))
        })
    });
    let mut z = 0u32;
    g.bench_function("origin_aggregated_features", |b| {
        b.iter(|| {
            z = (z + 1) % city.n_zones() as u32;
            black_box(aggregate::origin_features(&fx, &city, &m, ZoneId(z)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);

//! Evaluation: predicted vs ground-truth measures (paper §V-A's metrics).

use crate::naive::NaiveResult;
use crate::pipeline::PipelineResult;
use serde::{Deserialize, Serialize};
use staq_access::{classify, fairness, ZoneMeasures};
use staq_ml::metrics::{accuracy, mae, pearson};
use staq_synth::ZoneId;

/// All §V-A performance measures for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// MAE of MAC over unlabeled zones (Fig. 3's error term).
    pub mac_mae: f64,
    /// Pearson correlation of MAC (Fig. 4 "MAC corr").
    pub mac_corr: f64,
    /// MAE of ACSD.
    pub acsd_mae: f64,
    /// Pearson correlation of ACSD (Fig. 4 "ACSD corr").
    pub acsd_corr: f64,
    /// Accessibility-classification accuracy (Fig. 4 "Accuracy").
    pub class_accuracy: f64,
    /// Fairness Index Error |J(truth) − J(predicted)| (Fig. 4 "FIE").
    pub fie: f64,
    /// Zones evaluated (the unlabeled set).
    pub n_eval: usize,
}

/// Evaluates a pipeline run against naïve ground truth.
///
/// Metrics follow the paper: errors and correlations are computed on the
/// *inferred* (unlabeled) zones; classification uses the ground truth's
/// city-wide means as the shared class boundary; the fairness index
/// compares the full measure sets (labeled zones carry their true values in
/// the prediction, as in deployment).
pub fn evaluate(truth: &NaiveResult, result: &PipelineResult) -> EvalReport {
    let truth_by_zone: std::collections::HashMap<ZoneId, &ZoneMeasures> =
        truth.measures.iter().map(|m| (m.zone, m)).collect();

    // (truth, predicted) pairs over the unlabeled zones present in both.
    let eval: Vec<(ZoneMeasures, ZoneMeasures)> = result
        .predicted_unlabeled()
        .into_iter()
        .filter_map(|p| truth_by_zone.get(&p.zone).map(|t| (**t, p)))
        .collect();
    assert!(!eval.is_empty(), "no overlap between truth and prediction");

    let t_mac: Vec<f64> = eval.iter().map(|(t, _)| t.mac).collect();
    let p_mac: Vec<f64> = eval.iter().map(|(_, p)| p.mac).collect();
    let t_acsd: Vec<f64> = eval.iter().map(|(t, _)| t.acsd).collect();
    let p_acsd: Vec<f64> = eval.iter().map(|(_, p)| p.acsd).collect();

    // Class boundaries from the ground truth's city means.
    let ref_means = classify::means_from(&truth.measures);
    let t_measures: Vec<ZoneMeasures> = eval.iter().map(|(t, _)| *t).collect();
    let p_measures: Vec<ZoneMeasures> = eval.iter().map(|(_, p)| *p).collect();
    let t_classes: Vec<_> =
        classify::classify_all(&t_measures, Some(ref_means)).into_iter().map(|(_, c)| c).collect();
    let p_classes: Vec<_> =
        classify::classify_all(&p_measures, Some(ref_means)).into_iter().map(|(_, c)| c).collect();

    // Fairness over the full sets.
    let j_truth = fairness::fairness_of(&truth.measures);
    let j_pred = fairness::fairness_of(&result.predicted);

    EvalReport {
        mac_mae: mae(&t_mac, &p_mac),
        mac_corr: pearson(&t_mac, &p_mac),
        acsd_mae: mae(&t_acsd, &p_acsd),
        acsd_corr: pearson(&t_acsd, &p_acsd),
        class_accuracy: accuracy(&t_classes, &p_classes),
        fie: (j_truth - j_pred).abs(),
        n_eval: eval.len(),
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAC mae={:.2} corr={:.3} | ACSD mae={:.2} corr={:.3} | acc={:.2} FIE={:.4} (n={})",
            self.mac_mae,
            self.mac_corr,
            self.acsd_mae,
            self.acsd_corr,
            self.class_accuracy,
            self.fie,
            self.n_eval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::OfflineArtifacts;
    use crate::config::PipelineConfig;
    use crate::pipeline::SsrPipeline;
    use staq_gtfs::time::TimeInterval;
    use staq_ml::ModelKind;
    use staq_road::IsochroneParams;
    use staq_synth::{City, CityConfig, PoiCategory};
    use staq_todam::TodamSpec;
    use staq_transit::CostKind;

    fn run_eval(model: ModelKind, beta: f64) -> EvalReport {
        let city = City::generate(&CityConfig::small(42));
        let artifacts =
            OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        let spec = TodamSpec { per_hour: 4, ..Default::default() };
        let truth = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
        let cfg = PipelineConfig { beta, model, todam: spec, ..Default::default() };
        let result = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School);
        evaluate(&truth, &result)
    }

    #[test]
    fn mlp_learns_access_costs() {
        let r = run_eval(ModelKind::Mlp, 0.3);
        assert!(r.mac_mae.is_finite() && r.mac_mae > 0.0);
        assert!(r.mac_corr > 0.5, "MLP should capture the spatial pattern: corr {}", r.mac_corr);
        assert!(r.class_accuracy > 0.25, "better than random 4-class");
        assert!(r.fie < 0.2, "fairness index error {}", r.fie);
        assert!(r.n_eval > 0);
    }

    #[test]
    fn perfect_predictions_hit_ideal_metrics() {
        // Oracle check: feeding the ground truth back as "prediction" must
        // produce zero error, perfect correlation, full accuracy, zero FIE.
        let city = City::generate(&CityConfig::small(42));
        let artifacts =
            OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        let spec = TodamSpec { per_hour: 4, ..Default::default() };
        let truth = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
        let cfg =
            PipelineConfig { beta: 0.2, model: ModelKind::Ols, todam: spec, ..Default::default() };
        let mut result = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School);
        let truth_by_zone: std::collections::HashMap<_, _> =
            truth.measures.iter().map(|m| (m.zone, *m)).collect();
        for m in &mut result.predicted {
            if let Some(t) = truth_by_zone.get(&m.zone) {
                *m = *t;
            }
        }
        let r = evaluate(&truth, &result);
        assert!(r.mac_mae < 1e-9, "{r}");
        assert!(r.acsd_mae < 1e-9, "{r}");
        assert!((r.mac_corr - 1.0).abs() < 1e-9, "{r}");
        assert!((r.class_accuracy - 1.0).abs() < 1e-12, "{r}");
        assert!(r.fie < 1e-12, "{r}");
    }

    #[test]
    fn report_displays() {
        let r = run_eval(ModelKind::Ols, 0.3);
        let s = r.to_string();
        assert!(s.contains("MAC"));
        assert!(s.contains("FIE"));
    }

    #[test]
    fn higher_beta_does_not_hurt_much() {
        // Sanity (not strict monotonicity — one seed): a 30% budget should
        // not be wildly worse than 10%.
        let lo = run_eval(ModelKind::Mlp, 0.1);
        let hi = run_eval(ModelKind::Mlp, 0.3);
        assert!(hi.mac_mae < lo.mac_mae * 2.0 + 2.0);
    }
}

//! Blocking client for the staq-serve wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol itself allows pipelining; the load generator opens
//! many clients instead). Semantic failures arrive as
//! [`ClientError::Server`] with the server's error code and message —
//! the connection stays usable after them.

use crate::codec::{
    self, CodecError, DeltaAck, ErrorCode, Request, Response, StatsReply, WhatIfAnswer,
};
use bytes::BytesMut;
use staq_access::measures::ZoneMeasures;
use staq_access::{AccessQuery, QueryAnswer};
use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::Delta;
use staq_obs::{OpsReport, OwnedSpan};
use staq_synth::{PoiCategory, PoiId};
use staq_transit::Journey;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Codec(CodecError),
    /// The server answered with an error frame.
    Server {
        code: ErrorCode,
        message: String,
    },
    /// The server answered with the wrong response kind.
    Unexpected(&'static str),
    /// The server closed the connection.
    Disconnected,
    /// A configured read/write timeout elapsed mid-call. On a plain
    /// [`Client`] this poisons the connection (the response may still
    /// arrive and would pair with the next request); a
    /// [`MuxClient`](crate::mux::MuxClient) survives it (late responses
    /// are matched by ID and discarded).
    TimedOut,
    /// A previous call failed mid-frame; request/response pairing on this
    /// connection can no longer be trusted. Discard the client.
    Poisoned,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Poisoned => {
                write!(f, "connection poisoned by an earlier mid-frame failure")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Per-connection client tunables.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Longest a call blocks waiting for response bytes before failing
    /// with [`ClientError::TimedOut`] (and poisoning the connection).
    /// `None` waits forever — a stalled or half-open server blocks the
    /// caller indefinitely.
    pub read_timeout: Option<Duration>,
    /// Same, for writing the request (a peer that stopped reading
    /// eventually exhausts the socket buffer and stalls writes).
    pub write_timeout: Option<Duration>,
}

/// One connection to a staq-serve server.
pub struct Client {
    stream: TcpStream,
    buf: BytesMut,
    out: BytesMut,
    /// Set when a call failed after its request may have reached the
    /// wire: an unread (or half-read) response could still be in flight,
    /// so the next call would pair with the wrong frame. Once set, every
    /// call fails fast — pools use this to discard instead of reuse.
    poisoned: bool,
}

impl Client {
    /// Connects and disables Nagle (request/response latencies matter
    /// more than byte counts here). No timeouts: calls block until the
    /// server answers or the connection breaks.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// [`connect`](Self::connect) with read/write timeouts. A timed-out
    /// call fails with [`ClientError::TimedOut`] and poisons the
    /// connection — the response may still be in flight, so reusing the
    /// socket could pair it with the next request.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, cfg: &ClientConfig) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(cfg.read_timeout)?;
        stream.set_write_timeout(cfg.write_timeout)?;
        Ok(Client {
            stream,
            buf: BytesMut::with_capacity(4096),
            out: BytesMut::with_capacity(4096),
            poisoned: false,
        })
    }

    /// True after any IO/codec failure mid-call: the connection's framing
    /// state is undefined and the client must not be reused. Semantic
    /// error frames ([`ClientError::Server`]) do *not* poison — the
    /// protocol stays in sync across them.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Full SSR measure vector for one category.
    pub fn measures(&mut self, category: PoiCategory) -> Result<Vec<ZoneMeasures>, ClientError> {
        match self.call(&Request::Measures { category, approx: false })? {
            Response::Measures(ms) => Ok(ms),
            other => Err(unexpected(other)),
        }
    }

    /// [`Self::measures`] with the approximate-mode flag set: the server
    /// may answer from its warm cache and counts the request against its
    /// `engine.approx.*` metrics.
    pub fn measures_approx(
        &mut self,
        category: PoiCategory,
    ) -> Result<Vec<ZoneMeasures>, ClientError> {
        match self.call(&Request::Measures { category, approx: true })? {
            Response::Measures(ms) => Ok(ms),
            other => Err(unexpected(other)),
        }
    }

    /// An analytical access query for one category.
    pub fn query(
        &mut self,
        query: &AccessQuery,
        category: PoiCategory,
    ) -> Result<QueryAnswer, ClientError> {
        match self.call(&Request::Query { category, query: query.clone(), approx: false })? {
            Response::Query(a) => Ok(a),
            other => Err(unexpected(other)),
        }
    }

    /// [`Self::query`] in approximate mode: `PointAccess` queries may be
    /// answered by server-side interpolation within its configured error
    /// bound (exact fallback otherwise — the answer shape is identical).
    pub fn query_approx(
        &mut self,
        query: &AccessQuery,
        category: PoiCategory,
    ) -> Result<QueryAnswer, ClientError> {
        match self.call(&Request::Query { category, query: query.clone(), approx: true })? {
            Response::Query(a) => Ok(a),
            other => Err(unexpected(other)),
        }
    }

    /// Scenario edit: add a POI.
    pub fn add_poi(&mut self, category: PoiCategory, pos: Point) -> Result<PoiId, ClientError> {
        match self.call(&Request::AddPoi { category, pos })? {
            Response::AddPoi { poi_id } => Ok(PoiId(poi_id)),
            other => Err(unexpected(other)),
        }
    }

    /// Scenario edit: add a bus route; returns zones rebuilt.
    pub fn add_bus_route(&mut self, stops: &[Point], headway_s: u32) -> Result<u32, ClientError> {
        match self.call(&Request::AddBusRoute { stops: stops.to_vec(), headway_s })? {
            Response::AddBusRoute { zones_rebuilt } => Ok(zones_rebuilt),
            other => Err(unexpected(other)),
        }
    }

    /// Streams one delta at a sequence number (0 = let the server assign
    /// the next one). A [`ClientError::Server`] with
    /// [`ErrorCode::SeqGap`] means this client is ahead of the server's
    /// log and must resend the missing tail first.
    pub fn apply_delta(&mut self, seq: u64, delta: &Delta) -> Result<DeltaAck, ClientError> {
        match self.call(&Request::ApplyDelta { seq, delta: delta.clone() })? {
            Response::ApplyDelta(ack) => Ok(ack),
            other => Err(unexpected(other)),
        }
    }

    /// Streams a contiguous run of deltas starting at `first_seq`
    /// (1-based); already-seen prefixes are skipped idempotently. Returns
    /// the highest sequence number the server's log now covers from this
    /// batch.
    pub fn delta_batch(&mut self, first_seq: u64, deltas: &[Delta]) -> Result<u64, ClientError> {
        match self.call(&Request::DeltaBatch { first_seq, deltas: deltas.to_vec() })? {
            Response::DeltaBatch { last_seq } => Ok(last_seq),
            other => Err(unexpected(other)),
        }
    }

    /// Evaluates counterfactual scenarios (each a delta list) against the
    /// live engine, answering `query` under each — side by side, in
    /// request order.
    pub fn what_if(
        &mut self,
        category: PoiCategory,
        scenarios: &[Vec<Delta>],
        query: &AccessQuery,
    ) -> Result<Vec<WhatIfAnswer>, ClientError> {
        match self.call(&Request::WhatIf {
            category,
            scenarios: scenarios.to_vec(),
            query: query.clone(),
        })? {
            Response::WhatIf(answers) => Ok(answers),
            other => Err(unexpected(other)),
        }
    }

    /// Point-to-point journeys against the live timetable: the Pareto
    /// (arrival, transfers) frontier, or — with `max_transfers` — the
    /// single fastest journey within that transfer cap.
    pub fn plan(
        &mut self,
        origin: Point,
        dest: Point,
        depart: Stime,
        day: DayOfWeek,
        max_transfers: Option<u8>,
    ) -> Result<Vec<Journey>, ClientError> {
        match self.call(&Request::Plan { origin, dest, depart, day, max_transfers })? {
            Response::Plan(journeys) => Ok(journeys),
            other => Err(unexpected(other)),
        }
    }

    /// The server's fleet-mergeable ops report: windowed per-class rates
    /// and quantiles, SLO burn status, retained slow traces.
    pub fn ops_report(&mut self) -> Result<OpsReport, ClientError> {
        match self.call(&Request::OpsReport)? {
            Response::OpsReport(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Completed spans at least `min_dur_ns` long from the server's trace
    /// ring; `set_capture_ns` first retunes the server's capture
    /// threshold (spans shorter than it are never recorded).
    pub fn trace_dump(
        &mut self,
        min_dur_ns: u64,
        set_capture_ns: Option<u64>,
    ) -> Result<Vec<OwnedSpan>, ClientError> {
        match self.call(&Request::TraceDump { min_dur_ns, set_capture_ns })? {
            Response::TraceDump(spans) => Ok(spans),
            other => Err(unexpected(other)),
        }
    }

    /// Sends one request frame and blocks for its response frame.
    ///
    /// Any IO or codec failure poisons the client: the request may have
    /// reached the server, so a retry on the same connection could read
    /// the *first* request's response as its own. Callers that retry must
    /// do so on a fresh connection.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        match self.call_inner(request) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn call_inner(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.out.clear();
        codec::encode_request(request, &mut self.out);
        self.stream.write_all(&self.out).map_err(map_io)?;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(resp) = codec::decode_response(&mut self.buf)? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut scratch).map_err(map_io)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// Socket-timeout expiries surface as `WouldBlock` (or `TimedOut`,
/// platform-dependent); everything else stays an IO error.
fn map_io(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::TimedOut,
        _ => ClientError::Io(e),
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        Response::Measures(_) => ClientError::Unexpected("measures"),
        Response::Query(_) => ClientError::Unexpected("query answer"),
        Response::AddPoi { .. } => ClientError::Unexpected("add_poi ack"),
        Response::AddBusRoute { .. } => ClientError::Unexpected("add_bus_route ack"),
        Response::Stats(_) => ClientError::Unexpected("stats"),
        Response::TraceDump(_) => ClientError::Unexpected("trace dump"),
        Response::ApplyDelta(_) => ClientError::Unexpected("apply_delta ack"),
        Response::DeltaBatch { .. } => ClientError::Unexpected("delta_batch ack"),
        Response::WhatIf(_) => ClientError::Unexpected("what_if answers"),
        Response::Plan(_) => ClientError::Unexpected("plan journeys"),
        Response::OpsReport(_) => ClientError::Unexpected("ops report"),
    }
}

//! Deadline/budget admission control for the worker pool.
//!
//! The gate keeps an EWMA of request execution time and estimates, at
//! enqueue time, how long a new request would sit in the queue:
//! `est_wait = queue_len × ewma_exec / workers`. A request is shed with
//! `Overloaded` — *before* consuming a queue slot — when that estimate
//! exceeds the configured queue budget, or exceeds the request's own
//! remaining deadline (it would be dead on arrival at a worker anyway).
//! Workers apply one more check at dequeue: a request whose deadline
//! passed while it waited is shed without executing.
//!
//! Everything is relaxed atomics — the estimate only needs to be
//! roughly right to keep the queue from collapsing under overload.

use staq_obs::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub static ADMITTED: Counter = Counter::new("admission.admitted");
/// Every shed outcome, whatever the reason.
pub static SHED: Counter = Counter::new("admission.shed");
/// Shed at enqueue: estimated wait exceeded the queue budget.
pub static SHED_QUEUE: Counter = Counter::new("admission.shed.queue");
/// Shed at enqueue: estimated wait exceeded the request's deadline.
pub static SHED_DEADLINE: Counter = Counter::new("admission.shed.deadline");
/// Shed at enqueue: the bounded queue itself was full.
pub static SHED_FULL: Counter = Counter::new("admission.shed.full");
/// Shed at dequeue: the deadline expired while the request waited.
pub static SHED_EXPIRED: Counter = Counter::new("admission.shed.expired");

/// Why a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Estimated queue wait exceeds the server's queue-time budget.
    QueueBudget,
    /// Estimated queue wait exceeds the request's remaining deadline.
    DeadlineTooTight,
    /// The bounded queue had no free slot.
    QueueFull,
    /// Deadline expired before a worker picked the request up.
    Expired,
}

impl ShedReason {
    pub fn message(&self) -> &'static str {
        match self {
            ShedReason::QueueBudget => "estimated queue wait exceeds server budget",
            ShedReason::DeadlineTooTight => "estimated queue wait exceeds request deadline",
            ShedReason::QueueFull => "request queue full",
            ShedReason::Expired => "deadline expired before execution",
        }
    }

    /// Bumps `admission.shed` plus the per-reason counter.
    pub fn count(&self) {
        SHED.inc();
        match self {
            ShedReason::QueueBudget => SHED_QUEUE.inc(),
            ShedReason::DeadlineTooTight => SHED_DEADLINE.inc(),
            ShedReason::QueueFull => SHED_FULL.inc(),
            ShedReason::Expired => SHED_EXPIRED.inc(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum tolerated *estimated* queue wait before shedding.
    pub queue_budget: Duration,
    /// Worker count the wait estimate divides by.
    pub workers: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { queue_budget: Duration::from_millis(500), workers: 4 }
    }
}

pub struct Admission {
    budget_ns: u64,
    workers: u64,
    /// EWMA of execution time, nanoseconds; 0 until the first sample.
    ewma_exec_ns: AtomicU64,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            budget_ns: cfg.queue_budget.as_nanos().min(u64::MAX as u128) as u64,
            workers: cfg.workers.max(1) as u64,
            ewma_exec_ns: AtomicU64::new(0),
        }
    }

    /// Expected time a request enqueued behind `queue_len` others waits
    /// for a worker. Zero until the first execution sample lands (cold
    /// servers admit everything).
    pub fn estimated_wait(&self, queue_len: usize) -> Duration {
        let ewma = self.ewma_exec_ns.load(Ordering::Relaxed);
        Duration::from_nanos((queue_len as u64).saturating_mul(ewma) / self.workers)
    }

    /// Enqueue-time gate. `remaining_deadline` is how long the caller is
    /// still willing to wait, if it said.
    pub fn admit(
        &self,
        queue_len: usize,
        remaining_deadline: Option<Duration>,
    ) -> Result<(), ShedReason> {
        let est = self.estimated_wait(queue_len);
        if est.as_nanos() as u64 > self.budget_ns {
            return Err(ShedReason::QueueBudget);
        }
        if let Some(rem) = remaining_deadline {
            if est > rem {
                return Err(ShedReason::DeadlineTooTight);
            }
        }
        Ok(())
    }

    /// Feeds one execution-time sample into the EWMA (α = 1/8).
    pub fn observe_exec(&self, dur: Duration) {
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let old = self.ewma_exec_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_exec_ns.store(new, Ordering::Relaxed);
    }

    /// Current EWMA of execution time.
    pub fn ewma_exec(&self) -> Duration {
        Duration::from_nanos(self.ewma_exec_ns.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_gate_admits_everything() {
        let a = Admission::new(AdmissionConfig { queue_budget: Duration::ZERO, workers: 1 });
        // No samples yet: est wait is zero whatever the queue length.
        assert!(a.admit(1_000_000, Some(Duration::ZERO)).is_ok());
    }

    #[test]
    fn queue_budget_sheds_once_estimate_exceeds_it() {
        let a =
            Admission::new(AdmissionConfig { queue_budget: Duration::from_millis(10), workers: 2 });
        a.observe_exec(Duration::from_millis(4));
        // est = 10 * 4ms / 2 workers = 20ms > 10ms budget.
        assert_eq!(a.admit(10, None), Err(ShedReason::QueueBudget));
        // est = 4 * 4ms / 2 = 8ms <= 10ms.
        assert!(a.admit(4, None).is_ok());
    }

    #[test]
    fn tight_deadlines_shed_before_the_budget_does() {
        let a =
            Admission::new(AdmissionConfig { queue_budget: Duration::from_secs(10), workers: 1 });
        a.observe_exec(Duration::from_millis(5));
        // 20 queued * 5ms = 100ms estimated wait; a 50ms deadline can't make it.
        assert_eq!(a.admit(20, Some(Duration::from_millis(50))), Err(ShedReason::DeadlineTooTight));
        assert!(a.admit(20, Some(Duration::from_millis(500))).is_ok());
    }

    #[test]
    fn ewma_tracks_execution_samples() {
        let a = Admission::new(AdmissionConfig::default());
        a.observe_exec(Duration::from_millis(8));
        assert_eq!(a.ewma_exec(), Duration::from_millis(8));
        for _ in 0..64 {
            a.observe_exec(Duration::from_millis(2));
        }
        let settled = a.ewma_exec();
        assert!(settled < Duration::from_millis(3), "ewma did not converge: {settled:?}");
        assert!(settled >= Duration::from_millis(1));
    }
}

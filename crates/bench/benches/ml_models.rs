//! Model training cost: fit+infer time of each SSR model on an
//! origin-level-sized problem (hundreds of rows, 19 features).

use criterion::{criterion_group, criterion_main, Criterion};
use staq_ml::{Matrix, ModelKind, SparseAdj, SsrTask};
use std::hint::black_box;

/// A synthetic spatial regression problem shaped like the pipeline's.
fn problem(n_l: usize, n_u: usize) -> (Vec<(f64, f64)>, Matrix, Matrix, Matrix) {
    let n = n_l + n_u;
    let mut coords = Vec::with_capacity(n);
    let mut x = Matrix::zeros(n, 19);
    let mut y = Matrix::zeros(n_l, 2);
    let mut s = 99u64;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 33) as f64 / u32::MAX as f64
    };
    for i in 0..n {
        let (cx, cy) = (rnd() * 4000.0, rnd() * 4000.0);
        coords.push((cx, cy));
        for j in 0..19 {
            x[(i, j)] = (cx / 500.0).sin() * (j as f64 + 1.0) + rnd() * 0.2;
        }
        if i < n_l {
            y[(i, 0)] = 20.0 + (cx / 700.0).cos() * 8.0 + rnd();
            y[(i, 1)] = 4.0 + (cy / 900.0).sin() * 2.0 + rnd() * 0.5;
        }
    }
    let xl = x.select_rows(&(0..n_l).collect::<Vec<_>>());
    let xu = x.select_rows(&(n_l..n).collect::<Vec<_>>());
    (coords, xl, y, xu)
}

fn bench_models(c: &mut Criterion) {
    let (coords, xl, yl, xu) = problem(40, 160);
    let adj = SparseAdj::gaussian_threshold(&coords, 12, 1e-4, None);

    let mut g = c.benchmark_group("ml_models");
    g.sample_size(10);
    for kind in ModelKind::ALL {
        let task = SsrTask {
            x_labeled: &xl,
            y_labeled: &yl,
            x_unlabeled: &xu,
            adjacency: Some(&adj),
            seed: 5,
        };
        g.bench_function(kind.label(), |b| b.iter(|| black_box(kind.build().fit_predict(&task))));
    }
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

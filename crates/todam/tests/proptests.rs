//! Property tests for TODAM construction: gravity gating must behave like a
//! thinning (never invent trips), obey determinism, and respect α ordering.

use proptest::prelude::*;
use staq_gtfs::time::TimeInterval;
use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
use staq_todam::{sampling, Attractiveness, TodamSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matrix_invariants_hold_across_specs(
        seed in 0u64..50,
        per_hour in 1u32..8,
        gamma in 1.0f64..40.0,
        decay in 300.0f64..3000.0,
    ) {
        let city = City::generate(&CityConfig::tiny(seed));
        let spec = TodamSpec {
            per_hour,
            gamma,
            attractiveness: Attractiveness { decay_m: decay, cutoff_rel: 0.02 },
            seed,
            ..Default::default()
        };
        let m = spec.build(&city, PoiCategory::School);
        prop_assert!(m.check_invariants().is_ok());
        prop_assert!(m.n_trips() as u64 <= m.full_size);
        for t in m.trips() {
            prop_assert!(spec.interval.contains(t.start));
        }
    }

    #[test]
    fn larger_gamma_never_samples_fewer_trips(seed in 0u64..50) {
        let city = City::generate(&CityConfig::tiny(seed));
        let lo = TodamSpec { gamma: 3.0, seed, ..Default::default() }
            .build(&city, PoiCategory::School);
        let hi = TodamSpec { gamma: 30.0, seed, ..Default::default() }
            .build(&city, PoiCategory::School);
        // Same pair streams, higher keep probability: supersets per pair in
        // expectation; totals must not shrink (allow equality at saturation).
        prop_assert!(hi.n_trips() >= lo.n_trips());
    }

    #[test]
    fn alpha_orders_trip_counts_within_a_zone(seed in 0u64..30) {
        let city = City::generate(&CityConfig::small(seed));
        let spec = TodamSpec { per_hour: 12, ..Default::default() };
        let m = spec.build(&city, PoiCategory::School);
        // For a zone with several attracted POIs, the most attractive POI
        // should rarely receive fewer trips than one with <= half its alpha
        // (binomial noise bounded by the 12x2=24 draws). Check the strong
        // ordering only between extremes.
        for z in 0..city.n_zones().min(30) {
            let zid = ZoneId(z as u32);
            let alpha = m.zone_alpha(zid);
            if alpha.len() < 2 {
                continue;
            }
            let max = alpha.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
            let min = alpha.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
            if max.1 < min.1 * 6.0 {
                continue; // not extreme enough to beat sampling noise
            }
            let count = |poi: u32| m.zone_trips(zid).iter().filter(|t| t.poi_idx == poi).count();
            prop_assert!(
                count(max.0) >= count(min.0),
                "zone {z}: alpha {:.3} got {} trips, alpha {:.3} got {}",
                max.1, count(max.0), min.1, count(min.0)
            );
        }
    }

    #[test]
    fn start_time_draws_stay_inside_any_interval(
        start_h in 5u32..20,
        len_h in 1u32..4,
        rate in 1u32..20,
        seed in 0u64..100,
    ) {
        let v = TimeInterval::new(
            staq_gtfs::Stime::hours(start_h),
            staq_gtfs::Stime::hours(start_h + len_h),
            staq_gtfs::DayOfWeek::Tuesday,
            "window",
        );
        let times = sampling::draw_start_times(&v, rate, seed);
        prop_assert_eq!(times.len(), (rate * len_h) as usize);
        for t in times {
            prop_assert!(v.contains(t));
        }
    }
}

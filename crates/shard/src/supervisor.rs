//! Backend lifecycle and the per-shard call path.
//!
//! [`ShardSupervisor::start`] boots every backend in parallel, readiness-
//! probes each one (connect + `Stats` until it answers) and only then
//! admits traffic. A monitor thread watches liveness: a backend that dies
//! — observed either by the monitor or by a failed call — is marked down,
//! and after `respawn_backoff` the monitor restarts it, re-probes, and
//! brings its pool back up under a fresh generation.
//!
//! While a shard is down, calls to it fail fast with
//! `ErrorCode::Unavailable` — no dialing, no timeout-waiting — so the
//! categories owned by live shards are completely unaffected by a crashed
//! neighbour.
//!
//! Retry semantics on a mid-call failure:
//!
//! * **Reads** (`Measures`, `Query`, `Stats`) are idempotent and retried
//!   once on a *fresh* connection (the failed one is poisoned and
//!   discarded; the wire protocol has no request ids, so the same
//!   connection must never be reused after a desync).
//! * **Edits** (`AddPoi`, `AddBusRoute`) are not retried: the backend may
//!   have applied the edit before the connection died, and replaying it
//!   would double-apply. The caller gets `Unavailable` and decides.

use crate::backend::Backend;
use crate::metrics;
use crate::pool::{BackendPool, PoolConfig, PoolError};
use parking_lot::Mutex;
use staq_obs::trace;
use staq_serve::codec::{ErrorCode, Request, Response};
use staq_serve::Client;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervisor tunables.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Delay between a backend being marked down and the respawn attempt.
    pub respawn_backoff: Duration,
    /// Readiness-probe window per backend start.
    pub probe_timeout: Duration,
    /// Monitor thread tick.
    pub poll_interval: Duration,
    /// Per-backend connection pool settings.
    pub pool: PoolConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            respawn_backoff: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(600),
            poll_interval: Duration::from_millis(50),
            pool: PoolConfig::default(),
        }
    }
}

struct Slot {
    backend: Mutex<Box<dyn Backend>>,
    pool: BackendPool,
}

struct Inner {
    slots: Vec<Slot>,
    cfg: SupervisorConfig,
    shutdown: AtomicBool,
}

/// Spawns, probes, monitors and respawns the backend fleet; owns the
/// routed call path. Dropping the supervisor kills every backend.
pub struct ShardSupervisor {
    inner: Arc<Inner>,
    /// Behind a mutex so [`shutdown`](Self::shutdown) can take `&self` —
    /// the router shares the supervisor across connection threads.
    monitor: Mutex<Option<JoinHandle<()>>>,
    in_process: bool,
}

impl ShardSupervisor {
    /// Starts every backend concurrently (city builds dominate startup),
    /// probes readiness, and admits traffic. Fails if any backend cannot
    /// start or never answers its probe.
    pub fn start(
        backends: Vec<Box<dyn Backend>>,
        cfg: SupervisorConfig,
    ) -> io::Result<ShardSupervisor> {
        assert!(!backends.is_empty(), "a shard fleet needs at least one backend");
        let in_process = backends.iter().any(|b| b.in_process());
        let probe_timeout = cfg.probe_timeout;
        let slots: Vec<Slot> = backends
            .into_iter()
            .map(|b| Slot { backend: Mutex::new(b), pool: BackendPool::new(cfg.pool.clone()) })
            .collect();

        let addrs: Vec<io::Result<SocketAddr>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = slots
                .iter()
                .map(|slot| {
                    scope.spawn(move |_| -> io::Result<SocketAddr> {
                        let addr = slot.backend.lock().start()?;
                        probe(addr, probe_timeout)?;
                        Ok(addr)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("backend start panicked")).collect()
        })
        .expect("backend start scope");

        for (slot, addr) in slots.iter().zip(addrs) {
            match addr {
                Ok(a) => slot.pool.bring_up(a),
                Err(e) => {
                    for s in &slots {
                        s.backend.lock().kill();
                    }
                    return Err(e);
                }
            }
        }

        let inner = Arc::new(Inner { slots, cfg, shutdown: AtomicBool::new(false) });
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("staq-shard-monitor".into())
                .spawn(move || monitor_loop(&inner))
                .expect("spawning monitor thread")
        };
        Ok(ShardSupervisor { inner, monitor: Mutex::new(Some(monitor)), in_process })
    }

    /// Number of shards in the fleet.
    pub fn n_shards(&self) -> usize {
        self.inner.slots.len()
    }

    /// True when any backend shares this process (and its metrics
    /// registry) — the Stats merge must not sum identical snapshots.
    pub fn any_in_process(&self) -> bool {
        self.in_process
    }

    /// Whether a shard is currently admitting traffic.
    pub fn is_up(&self, shard: usize) -> bool {
        self.inner.slots[shard].pool.is_up()
    }

    /// Test hook: hard-kills one backend, as a crash would. The monitor
    /// respawns it after the configured backoff.
    pub fn kill_backend(&self, shard: usize) {
        let slot = &self.inner.slots[shard];
        slot.backend.lock().kill();
        if slot.pool.mark_down() {
            metrics::FAILOVERS.inc();
        }
    }

    /// Sends one request to one shard through its pool, with the retry
    /// semantics described at module level. Failures come back as
    /// `Unavailable` error frames, never as transport errors — the front
    /// connection stays healthy while backends churn.
    pub fn call(&self, shard: usize, request: &Request) -> Response {
        let slot = &self.inner.slots[shard];
        let retryable = !matches!(request, Request::AddPoi { .. } | Request::AddBusRoute { .. });
        let attempts = if retryable { 2 } else { 1 };

        for attempt in 0..attempts {
            let acquire = trace::span("shard.pool.acquire");
            let checkout = slot.pool.checkout();
            drop(acquire);
            let mut lease = match checkout {
                Ok(l) => l,
                Err(PoolError::Down) => return unavailable(shard, "down"),
                Err(PoolError::Overloaded) => return unavailable(shard, "overloaded"),
            };
            let gen = lease.gen;
            let t = Instant::now();
            // The client encodes the current span context into the frame,
            // so opening this span *before* the call is what propagates
            // the trace to the backend.
            let mut span = trace::span("shard.backend.call");
            span.attr("shard", shard as u64);
            span.attr("attempt", attempt as u64);
            let result = lease.client.call(request);
            drop(span);
            match result {
                Ok(resp) => {
                    metrics::backend_latency(shard).record(t.elapsed());
                    slot.pool.give_back(lease);
                    return resp;
                }
                Err(_) => {
                    // The lease is poisoned; give_back frees the permit
                    // and drops the connection.
                    slot.pool.give_back(lease);
                    if attempt + 1 < attempts {
                        metrics::RETRIES.inc();
                        continue;
                    }
                    if slot.pool.mark_down_if(gen) {
                        metrics::FAILOVERS.inc();
                    }
                    return unavailable(shard, "failed mid-request");
                }
            }
        }
        unreachable!("attempts >= 1")
    }

    /// Stops the monitor and kills every backend. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(h) = self.monitor.lock().take() {
            h.join().expect("monitor thread panicked");
        }
        for slot in &self.inner.slots {
            slot.backend.lock().kill();
            slot.pool.mark_down();
        }
    }
}

impl Drop for ShardSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn unavailable(shard: usize, why: &str) -> Response {
    Response::Error { code: ErrorCode::Unavailable, message: format!("shard {shard} is {why}") }
}

/// Readiness: the backend must answer a real `Stats` request, not merely
/// accept a connection — the listener comes up before the worker pool.
fn probe(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if c.stats().is_ok() {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("backend at {addr} never answered its readiness probe"),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Watches liveness and respawns dead backends after the backoff.
fn monitor_loop(inner: &Inner) {
    // Per-slot deadline for the next respawn attempt.
    let mut respawn_at: Vec<Option<Instant>> = vec![None; inner.slots.len()];
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.poll_interval);
        for (i, slot) in inner.slots.iter().enumerate() {
            if slot.pool.is_up() {
                respawn_at[i] = None;
                // The process can die without any call noticing (idle
                // shard): poll liveness directly.
                if !slot.backend.lock().is_alive() && slot.pool.mark_down() {
                    metrics::FAILOVERS.inc();
                }
                continue;
            }
            let due =
                *respawn_at[i].get_or_insert_with(|| Instant::now() + inner.cfg.respawn_backoff);
            if Instant::now() < due {
                continue;
            }
            // Attempt a restart; on failure, back off again.
            let started = {
                let mut backend = slot.backend.lock();
                backend.start().and_then(|addr| {
                    probe(addr, inner.cfg.probe_timeout)?;
                    Ok(addr)
                })
            };
            match started {
                Ok(addr) => {
                    slot.pool.bring_up(addr);
                    metrics::RESPAWNS.inc();
                    respawn_at[i] = None;
                }
                Err(_) => {
                    respawn_at[i] = Some(Instant::now() + inner.cfg.respawn_backoff);
                }
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }
}

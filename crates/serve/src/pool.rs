//! Fixed-size worker pool over a bounded request queue.
//!
//! Connection threads enqueue [`Job`]s; `N` workers execute them against
//! the shared [`RtEngine`] (a sequenced delta log wrapping the
//! [`AccessEngine`]) and send the [`Response`] back through the job's
//! reply channel. Every schedule edit — the legacy `AddBusRoute` frame
//! included — flows through the delta log, so replicas can replay a
//! server's edits deterministically. The queue is bounded, so a flood of
//! requests exerts backpressure on connection threads instead of growing
//! memory without limit. Dropping the pool (or calling
//! [`WorkerPool::shutdown`]) closes the queue; workers drain what is left
//! and exit.

use crate::codec::{DeltaAck, ErrorCode, Request, Response, StatsReply, WhatIfAnswer};
use crossbeam::channel::{bounded, Receiver, Sender};
use staq_core::AccessEngine;
use staq_gtfs::Delta;
use staq_net::admission::{Admission, AdmissionConfig, ShedReason};
use staq_obs::{slo, slow, trace, AtomicHistogram, Counter, SloClass, SpanContext};
use staq_rt::{RtEngine, RtError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Requests executed, all kinds (the registry's view of
/// `PoolStats::requests_served`, which stays per-pool).
static REQUESTS: Counter = Counter::new("serve.requests");
/// Server-side execution latency per request kind — queue wait excluded,
/// engine time included, so the histograms price the work itself.
static H_MEASURES: AtomicHistogram = AtomicHistogram::new("serve.request.measures");
static H_QUERY: AtomicHistogram = AtomicHistogram::new("serve.request.query");
static H_ADD_POI: AtomicHistogram = AtomicHistogram::new("serve.request.add_poi");
static H_ADD_BUS_ROUTE: AtomicHistogram = AtomicHistogram::new("serve.request.add_bus_route");
static H_STATS: AtomicHistogram = AtomicHistogram::new("serve.request.stats");
static H_TRACE_DUMP: AtomicHistogram = AtomicHistogram::new("serve.request.trace_dump");
static H_APPLY_DELTA: AtomicHistogram = AtomicHistogram::new("serve.request.apply_delta");
static H_DELTA_BATCH: AtomicHistogram = AtomicHistogram::new("serve.request.delta_batch");
static H_WHAT_IF: AtomicHistogram = AtomicHistogram::new("serve.request.what_if");
static H_PLAN: AtomicHistogram = AtomicHistogram::new("serve.request.plan");
static H_OPS_REPORT: AtomicHistogram = AtomicHistogram::new("serve.request.ops_report");

/// The latency histogram for one request kind; names follow
/// [`Request::kind_label`] under the `serve.request.` prefix.
fn kind_histogram(request: &Request) -> &'static AtomicHistogram {
    match request {
        Request::Measures { .. } => &H_MEASURES,
        Request::Query { .. } => &H_QUERY,
        Request::AddPoi { .. } => &H_ADD_POI,
        Request::AddBusRoute { .. } => &H_ADD_BUS_ROUTE,
        Request::Stats => &H_STATS,
        Request::TraceDump { .. } => &H_TRACE_DUMP,
        Request::ApplyDelta { .. } => &H_APPLY_DELTA,
        Request::DeltaBatch { .. } => &H_DELTA_BATCH,
        Request::WhatIf { .. } => &H_WHAT_IF,
        Request::Plan { .. } => &H_PLAN,
        Request::OpsReport => &H_OPS_REPORT,
    }
}

/// The SLO class a request's latency and sheds are attributed to.
/// Introspection kinds (`Stats`, `TraceDump`, `OpsReport`) and the
/// scenario sandbox (`WhatIf`) carry no objective and return `None`.
pub fn slo_class(request: &Request) -> Option<SloClass> {
    match request {
        Request::Query { .. } => Some(SloClass::Query),
        Request::Plan { .. } => Some(SloClass::Plan),
        Request::Measures { .. } => Some(SloClass::Measures),
        Request::AddPoi { .. }
        | Request::AddBusRoute { .. }
        | Request::ApplyDelta { .. }
        | Request::DeltaBatch { .. } => Some(SloClass::Edits),
        Request::Stats
        | Request::TraceDump { .. }
        | Request::WhatIf { .. }
        | Request::OpsReport => None,
    }
}

/// Where a job's answer goes: a blocking channel (threaded connection
/// handlers, tests) or a callback (the reactor's event-loop path, which
/// encodes the frame and pushes it onto the connection's outbound
/// queue without parking a thread).
pub enum Reply {
    Channel(Sender<Response>),
    Callback(Box<dyn FnOnce(Response) + Send>),
}

impl Reply {
    /// Delivers the response; a dropped channel receiver (dead
    /// connection) is silently fine.
    pub fn send(self, response: Response) {
        match self {
            Reply::Channel(tx) => {
                let _ = tx.send(response);
            }
            Reply::Callback(f) => f(response),
        }
    }
}

/// One queued request plus where its answer goes back.
pub struct Job {
    pub request: Request,
    pub reply: Reply,
    /// The peer's propagated span context; the worker re-attaches it so
    /// engine spans land in the caller's trace (or roots a new one).
    pub ctx: SpanContext,
    /// When the job entered the queue — priced as `serve.queue_wait`.
    pub enqueued: Instant,
    /// Absolute shed point: a worker that dequeues the job after this
    /// instant answers `Overloaded` without executing.
    pub deadline: Option<Instant>,
}

impl Job {
    /// A job carrying the current thread's span context, enqueued now,
    /// with no deadline.
    pub fn new(request: Request, reply: Sender<Response>) -> Job {
        Job {
            request,
            reply: Reply::Channel(reply),
            ctx: trace::current(),
            enqueued: Instant::now(),
            deadline: None,
        }
    }
}

/// Shared counters the pool maintains for `Stats` requests.
#[derive(Default)]
pub struct PoolStats {
    requests_served: AtomicU64,
}

impl PoolStats {
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }
}

/// Fixed worker threads executing requests against one shared engine.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    admission: Arc<Admission>,
    size: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads with a queue of `queue_depth` jobs. The
    /// engine is wrapped in a fresh (empty) delta log; servers that must
    /// keep a log across restarts use [`WorkerPool::spawn_rt`].
    pub fn spawn(engine: Arc<AccessEngine>, workers: usize, queue_depth: usize) -> Self {
        Self::spawn_rt(Arc::new(RtEngine::new(engine)), workers, queue_depth)
    }

    /// Spawns the pool over an existing [`RtEngine`], preserving its delta
    /// log (sequence numbers keep counting from where the log stands).
    /// Admission uses the default queue budget; servers with their own
    /// budget use [`WorkerPool::spawn_rt_with`].
    pub fn spawn_rt(rt: Arc<RtEngine>, workers: usize, queue_depth: usize) -> Self {
        let admission =
            Arc::new(Admission::new(AdmissionConfig { workers, ..AdmissionConfig::default() }));
        Self::spawn_rt_with(rt, workers, queue_depth, admission)
    }

    /// Spawns the pool with an externally shared [`Admission`] gate —
    /// the server front end consults the same gate at decode time, the
    /// workers feed it execution samples and apply the dequeue-side
    /// deadline shed.
    pub fn spawn_rt_with(
        rt: Arc<RtEngine>,
        workers: usize,
        queue_depth: usize,
        admission: Arc<Admission>,
    ) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        assert!(queue_depth >= 1, "the queue must hold at least one job");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(queue_depth);
        let stats = Arc::new(PoolStats::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let rt = Arc::clone(&rt);
                let stats = Arc::clone(&stats);
                let admission = Arc::clone(&admission);
                let size = workers;
                std::thread::Builder::new()
                    .name(format!("staq-worker-{i}"))
                    .spawn(move || worker_loop(rx, rt, stats, admission, size))
                    .expect("spawning worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers: handles, stats, admission, size: workers }
    }

    /// Queue sender for connection threads. Cloning is cheap.
    pub fn sender(&self) -> Sender<Job> {
        self.tx.as_ref().expect("pool is running").clone()
    }

    /// Pool-wide counters.
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// The admission gate shared with the server front end.
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.admission)
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Closes the queue and joins every worker; pending jobs are drained
    /// first. Idempotent.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            h.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    rt: Arc<RtEngine>,
    stats: Arc<PoolStats>,
    admission: Arc<Admission>,
    pool_size: usize,
) {
    while let Ok(job) = rx.recv() {
        // Adopt the peer's trace on this worker thread (or root a new
        // one when serving directly): the request span is backdated to
        // enqueue time, the queue wait priced as its first child.
        let _ctx = trace::attach(job.ctx);
        let span = if job.ctx.is_some() {
            trace::span_at("serve.request", job.enqueued)
        } else {
            trace::root_span_at("serve.request", job.enqueued)
        };
        drop(trace::span_at("serve.queue_wait", job.enqueued));
        // Dequeue-side shed: the deadline lapsed while the job waited,
        // so executing it would only burn a worker on a dead answer.
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            ShedReason::Expired.count();
            if let Some(class) = slo_class(&job.request) {
                slo::shed(class);
            }
            drop(span);
            job.reply.send(Response::Error {
                code: ErrorCode::Overloaded,
                message: ShedReason::Expired.message().into(),
            });
            continue;
        }
        let t0 = Instant::now();
        let response = execute(&rt, &stats, pool_size, &job.request);
        admission.observe_exec(t0.elapsed());
        stats.requests_served.fetch_add(1, Ordering::Relaxed);
        // The worker is the one place the request's class, outcome and
        // full duration coexist with a ring that still holds its spans:
        // drop the root span so it lands in the ring, then decide
        // whether the completed trace earns slow-capture retention.
        let trace_id = trace::current().trace;
        drop(span);
        if let Some(class) = slo_class(&job.request) {
            let is_error = matches!(response, Response::Error { .. });
            slow::maybe_promote(
                class,
                trace_id,
                job.enqueued.elapsed().as_nanos() as u64,
                is_error,
            );
        }
        job.reply.send(response);
    }
}

/// Executes one request against the engine, timing it into the kind's
/// latency histogram. Validation happens here or in the delta path's
/// `Result` (never an engine assert) so a bad request becomes an error
/// frame instead of a dead worker.
pub fn execute(rt: &RtEngine, stats: &PoolStats, pool_size: usize, request: &Request) -> Response {
    let t0 = Instant::now();
    let span = trace::span("serve.execute");
    let response = execute_inner(rt, stats, pool_size, request);
    drop(span);
    REQUESTS.inc();
    kind_histogram(request).record(t0.elapsed());
    response
}

/// Maps a streaming failure to its error frame: gaps are recoverable
/// (resend the tail), rejections are semantic.
fn rt_error(e: RtError) -> Response {
    match e {
        RtError::Gap { .. } => Response::Error { code: ErrorCode::SeqGap, message: e.to_string() },
        RtError::Rejected(message) => Response::Error { code: ErrorCode::Invalid, message },
    }
}

fn execute_inner(
    rt: &RtEngine,
    stats: &PoolStats,
    pool_size: usize,
    request: &Request,
) -> Response {
    let engine: &AccessEngine = rt.engine();
    match request {
        Request::Measures { category, approx } => {
            let measures = if *approx {
                engine.measures_approx(*category)
            } else {
                engine.measures(*category)
            };
            Response::Measures(measures.predicted.clone())
        }
        Request::Query { category, query, approx } => Response::Query(if *approx {
            engine.query_approx(query, *category)
        } else {
            engine.query(query, *category)
        }),
        Request::AddPoi { category, pos } => {
            if !pos.x.is_finite() || !pos.y.is_finite() {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "POI position must be finite".into(),
                };
            }
            Response::AddPoi { poi_id: engine.add_poi(*category, *pos).0 }
        }
        // The legacy edit frame, kept as an alias: it is sequenced into
        // the delta log exactly like an `ApplyDelta` carrying `AddRoute`,
        // so v2 clients' edits replay on replicas too.
        Request::AddBusRoute { stops, headway_s } => {
            match rt.apply(Delta::AddRoute { stops: stops.clone(), headway_s: *headway_s }) {
                Ok(a) => Response::AddBusRoute {
                    zones_rebuilt: a.receipt.map_or(0, |r| r.zones_rebuilt as u32),
                },
                Err(e) => rt_error(e),
            }
        }
        Request::ApplyDelta { seq, delta } => match rt.apply_at(*seq, delta.clone()) {
            Ok(a) => Response::ApplyDelta(DeltaAck {
                seq: a.seq,
                zones_rebuilt: a.receipt.map_or(0, |r| r.zones_rebuilt as u32),
                replayed: a.receipt.is_none(),
            }),
            Err(e) => rt_error(e),
        },
        Request::DeltaBatch { first_seq, deltas } => {
            if *first_seq == 0 {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "a delta batch carries explicit sequence numbers (first_seq >= 1)"
                        .into(),
                };
            }
            match rt.apply_batch(*first_seq, deltas) {
                Ok(a) => Response::DeltaBatch { last_seq: a.seq },
                Err(e) => rt_error(e),
            }
        }
        Request::WhatIf { category, scenarios, query } => match rt.what_if(*category, scenarios) {
            Ok(outcomes) => Response::WhatIf(
                outcomes
                    .iter()
                    .map(|o| WhatIfAnswer {
                        answer: engine.answer_with(&o.predicted, query),
                        overlay_bytes: o.overlay.overlay_bytes as u64,
                    })
                    .collect(),
            ),
            Err(e) => rt_error(e),
        },
        Request::Stats => Response::Stats(StatsReply {
            pipeline_runs: engine.pipeline_runs(),
            requests_served: stats.requests_served(),
            cached: engine.cached_categories(),
            workers: pool_size as u16,
            // The snapshot is taken before this stats request's own
            // latency lands, so `serve.request.stats` lags itself by one.
            metrics: staq_obs::snapshot(),
        }),
        Request::TraceDump { min_dur_ns, set_capture_ns } => {
            if let Some(ns) = set_capture_ns {
                trace::set_capture_min_ns(*ns);
            }
            Response::TraceDump(trace::dump(*min_dur_ns))
        }
        Request::Plan { origin, dest, depart, day, max_transfers } => {
            if !origin.x.is_finite()
                || !origin.y.is_finite()
                || !dest.x.is_finite()
                || !dest.y.is_finite()
            {
                return Response::Error {
                    code: ErrorCode::Invalid,
                    message: "plan endpoints must be finite".into(),
                };
            }
            Response::Plan(engine.plan(*origin, *dest, *depart, *day, *max_transfers))
        }
        Request::OpsReport => {
            // Ticks the window ring lazily (the poll cadence defines the
            // window width) and assembles this process's fleet-mergeable
            // health view.
            Response::OpsReport(staq_obs::ops::report(staq_obs::slow::SLOW_KEEP))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_core::PipelineConfig;
    use staq_ml::ModelKind;
    use staq_synth::{City, CityConfig, PoiCategory};
    use staq_todam::TodamSpec;

    fn engine() -> Arc<AccessEngine> {
        let city = City::generate(&CityConfig::small(42));
        Arc::new(AccessEngine::new(
            city,
            PipelineConfig {
                beta: 0.25,
                model: ModelKind::Ols,
                todam: TodamSpec { per_hour: 3, ..Default::default() },
                ..Default::default()
            },
        ))
    }

    fn roundtrip(pool: &WorkerPool, request: Request) -> Response {
        let (reply_tx, reply_rx) = bounded(1);
        pool.sender().send(Job::new(request, reply_tx)).unwrap();
        reply_rx.recv().unwrap()
    }

    /// "Fastest with ≤1 transfer" end-to-end: a `Plan` frame through the
    /// pool answers with the Pareto frontier, and the capped variant
    /// returns exactly the frontier's best ≤1-transfer point.
    #[test]
    fn plan_answers_pareto_and_capped_queries() {
        let pool = WorkerPool::spawn(engine(), 2, 8);
        let city = City::generate(&CityConfig::small(42));
        let o = city.zones[3].centroid;
        let d = city.zones[city.zones.len() - 4].centroid;
        let depart = staq_gtfs::time::Stime::hms(7, 30, 0);
        let day = staq_gtfs::time::DayOfWeek::Tuesday;
        let plan = |max_transfers| Request::Plan { origin: o, dest: d, depart, day, max_transfers };
        let frontier = match roundtrip(&pool, plan(None)) {
            Response::Plan(js) => js,
            other => panic!("{other:?}"),
        };
        assert!(!frontier.is_empty(), "frontier always has the walk fallback");
        for w in frontier.windows(2) {
            assert!(w[0].n_transfers() < w[1].n_transfers());
            assert!(w[0].arrive > w[1].arrive);
        }
        let capped = match roundtrip(&pool, plan(Some(1))) {
            Response::Plan(js) => js,
            other => panic!("{other:?}"),
        };
        assert_eq!(capped.len(), 1);
        assert!(capped[0].n_transfers() <= 1);
        let want = frontier
            .iter()
            .filter(|j| j.n_transfers() <= 1)
            .map(|j| j.arrive)
            .min()
            .expect("walk fallback has zero transfers");
        assert_eq!(capped[0].arrive, want);

        let bad = Request::Plan {
            origin: staq_geom::Point::new(f64::NAN, 0.0),
            dest: d,
            depart,
            day,
            max_transfers: None,
        };
        match roundtrip(&pool, bad) {
            Response::Error { code: ErrorCode::Invalid, .. } => {}
            other => panic!("NaN origin must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn pool_answers_and_counts_requests() {
        let pool = WorkerPool::spawn(engine(), 2, 8);
        match roundtrip(&pool, Request::Measures { category: PoiCategory::School, approx: false }) {
            Response::Measures(ms) => assert!(!ms.is_empty()),
            other => panic!("{other:?}"),
        }
        match roundtrip(&pool, Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.pipeline_runs, 1);
                assert_eq!(s.requests_served, 1); // stats itself not yet counted
                assert_eq!(s.cached, vec![PoiCategory::School]);
                assert_eq!(s.workers, 2);
                // The embedded snapshot saw the measures request land
                // (obs statics are process-global, so only lower bounds
                // hold when tests share the binary).
                assert!(s.metrics.counter("serve.requests").unwrap_or(0) >= 1);
                let h = s.metrics.histogram("serve.request.measures").expect("measures hist");
                assert!(h.count >= 1, "measures latency must be recorded");
                assert!(h.p50_ns > 0, "recorded latencies are nonzero");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_edits_become_error_frames_not_panics() {
        let pool = WorkerPool::spawn(engine(), 1, 4);
        match roundtrip(
            &pool,
            Request::AddBusRoute { stops: vec![staq_geom::Point::new(0.0, 0.0)], headway_s: 600 },
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Invalid),
            other => panic!("{other:?}"),
        }
        // The worker survived and keeps serving.
        match roundtrip(&pool, Request::Stats) {
            Response::Stats(s) => assert_eq!(s.requests_served, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_joins_workers() {
        let mut pool = WorkerPool::spawn(engine(), 3, 4);
        pool.shutdown();
        pool.shutdown(); // idempotent
    }

    #[test]
    fn edits_and_deltas_share_one_sequenced_log() {
        use staq_gtfs::model::TripId;

        let pool = WorkerPool::spawn(engine(), 1, 4);
        // The legacy frame takes seq 1...
        let stops = vec![staq_geom::Point::new(100.0, 100.0), staq_geom::Point::new(900.0, 900.0)];
        match roundtrip(&pool, Request::AddBusRoute { stops, headway_s: 600 }) {
            Response::AddBusRoute { .. } => {}
            other => panic!("{other:?}"),
        }
        // ...so the first explicit delta gets seq 2.
        let delta = Delta::TripDelay { trip: TripId(0), delay_secs: 60 };
        match roundtrip(&pool, Request::ApplyDelta { seq: 0, delta: delta.clone() }) {
            Response::ApplyDelta(ack) => {
                assert_eq!(ack.seq, 2);
                assert!(!ack.replayed);
            }
            other => panic!("{other:?}"),
        }
        // Replaying seq 2 is idempotent; jumping to 9 is a gap.
        match roundtrip(&pool, Request::ApplyDelta { seq: 2, delta: delta.clone() }) {
            Response::ApplyDelta(ack) => assert!(ack.replayed),
            other => panic!("{other:?}"),
        }
        match roundtrip(&pool, Request::ApplyDelta { seq: 9, delta }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::SeqGap),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn what_if_empty_scenario_reproduces_the_base_answer() {
        use staq_access::AccessQuery;
        use staq_synth::PoiCategory;

        let pool = WorkerPool::spawn(engine(), 2, 8);
        let query = AccessQuery::MeanAccess;
        let base = match roundtrip(
            &pool,
            Request::Query { category: PoiCategory::School, query: query.clone(), approx: false },
        ) {
            Response::Query(a) => a,
            other => panic!("{other:?}"),
        };
        match roundtrip(
            &pool,
            Request::WhatIf { category: PoiCategory::School, scenarios: vec![vec![]], query },
        ) {
            Response::WhatIf(answers) => {
                assert_eq!(answers.len(), 1);
                assert_eq!(answers[0].answer, base);
            }
            other => panic!("{other:?}"),
        }
    }
}

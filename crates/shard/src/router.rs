//! The front server: wire protocol in, shard calls out.
//!
//! Speaks the same v2 protocol as a single `staq-serve` server, so every
//! existing client — including the load generator — works against a
//! sharded fleet unchanged. Per-request routing:
//!
//! * `Measures` / `Query` / `AddPoi` / `WhatIf` carry a category →
//!   routed to the one shard that [`shard_for`] assigns it (what-if
//!   overlays are read-only, so any replica answers them).
//! * `AddBusRoute` / `ApplyDelta` / `DeltaBatch` change the transit
//!   schedule for every category → the router is the fleet's sequencing
//!   authority: the supervisor appends the delta to its edit log under
//!   the next fleet sequence number (a client's `ApplyDelta` seq is
//!   advisory and ignored; `DeltaBatch` seqs are honored idempotently)
//!   and broadcasts it, gating OK on every shard acking. See
//!   `supervisor` module docs for catch-up and partial-failure behavior.
//! * `Stats` scatter-gathers: every live shard's [`StatsReply`] merges
//!   into one — engine fields sum, cached categories union, and metrics
//!   snapshots fold together via [`MetricsSnapshot::merge`] (or, when the
//!   backends share this process's registry, one snapshot stands for all
//!   to avoid double-counting).
//!
//! Threading mirrors `staq-serve`'s server: an acceptor spawns one
//! framing thread per client connection; that thread blocks on backend
//! round-trips, and backend-side concurrency is bounded by the per-shard
//! pools rather than a worker pool here.

use crate::hash::{shard_for, shard_for_key};
use crate::metrics;
use crate::supervisor::ShardSupervisor;
use bytes::BytesMut;
use parking_lot::Mutex;
use staq_gtfs::Delta;
use staq_obs::{trace, MetricsSnapshot, OwnedSpan};
use staq_serve::codec::{
    self, CodecError, ErrorCode, Request, Response, StatsReply, MAX_FRAME_LEN,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Router front-end tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { addr: "127.0.0.1:0".into() }
    }
}

/// Handle to a running router; dropping it shuts down the front end and
/// the supervised backend fleet.
pub struct RouterHandle {
    addr: SocketAddr,
    sup: Arc<ShardSupervisor>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound front address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The supervised fleet behind this router (test hooks: kill a
    /// backend, check shard status).
    pub fn supervisor(&self) -> &ShardSupervisor {
        &self.sup
    }

    /// Stops accepting, drains connections, then shuts the fleet down.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            h.join().expect("router acceptor panicked");
        }
        let conns = std::mem::take(&mut *self.conns.lock());
        for c in conns {
            c.join().expect("router connection thread panicked");
        }
        self.sup.shutdown();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the front end over an already-started fleet.
pub fn route(sup: ShardSupervisor, cfg: &RouterConfig) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let sup = Arc::new(sup);
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        let sup = Arc::clone(&sup);
        std::thread::Builder::new()
            .name("staq-shard-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shutdown = Arc::clone(&shutdown);
                    let sup = Arc::clone(&sup);
                    let handle = std::thread::Builder::new()
                        .name("staq-shard-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &sup, &shutdown);
                        })
                        .expect("spawning router connection thread");
                    conns.lock().push(handle);
                }
            })
            .expect("spawning router acceptor thread")
    };

    Ok(RouterHandle { addr, sup, shutdown, acceptor: Some(acceptor), conns })
}

/// Serves one front connection until it closes, desyncs, or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    sup: &ShardSupervisor,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf = BytesMut::with_capacity(4096);
    let mut scratch = [0u8; 16 * 1024];
    let mut out = BytesMut::with_capacity(4096);

    loop {
        loop {
            match codec::decode_request_full(&mut buf) {
                Ok(Some(decoded)) => {
                    // The router is the fleet's edge: continue a traced
                    // client's context, or mint the TraceId here.
                    let _ctx = trace::attach(decoded.ctx);
                    let span = if decoded.ctx.is_some() {
                        trace::span("shard.request")
                    } else {
                        trace::root_span("shard.request")
                    };
                    let response = dispatch(sup, decoded.request);
                    drop(span);
                    out.clear();
                    codec::encode_response_to(&response, decoded.version, &mut out);
                    stream.write_all(&out)?;
                }
                Ok(None) => break,
                Err(e) => {
                    out.clear();
                    codec::encode_response(
                        &Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
                        &mut out,
                    );
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                if buf.len() + n > MAX_FRAME_LEN + 4 {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        CodecError::FrameTooLarge(buf.len() + n),
                    ));
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Routes one decoded request to the fleet and produces its response.
pub fn dispatch(sup: &ShardSupervisor, request: Request) -> Response {
    metrics::route_counter(request.kind_label()).inc();
    match &request {
        Request::Measures { category, .. }
        | Request::Query { category, .. }
        | Request::AddPoi { category, .. }
        | Request::WhatIf { category, .. } => {
            let shard = shard_for(*category, sup.n_shards());
            let mut span = trace::span("shard.route");
            span.attr("shard", shard as u64);
            sup.call(shard, &request)
        }
        // Schedule edits: the supervisor sequences them into the fleet
        // log and broadcasts, replying OK only once every shard acked.
        Request::AddBusRoute { stops, headway_s } => {
            let delta = Delta::AddRoute { stops: stops.clone(), headway_s: *headway_s };
            match sup.broadcast_delta(delta) {
                Ok(ack) => Response::AddBusRoute { zones_rebuilt: ack.zones_rebuilt },
                Err(e) => e,
            }
        }
        // The router assigns fleet sequence numbers; a client's own seq
        // is advisory and ignored (0 already means "assign for me").
        Request::ApplyDelta { delta, .. } => match sup.broadcast_delta(delta.clone()) {
            Ok(ack) => Response::ApplyDelta(ack),
            Err(e) => e,
        },
        Request::DeltaBatch { first_seq, deltas } => sup.broadcast_batch(*first_seq, deltas),
        Request::Stats => gather_stats(sup),
        Request::TraceDump { min_dur_ns, set_capture_ns } => {
            gather_traces(sup, *min_dur_ns, *set_capture_ns)
        }
        // Journey planning has no category: every shard serves the same
        // replicated timetable, so spread queries by a rendezvous hash of
        // the OD pair (a repeated query sticks to one shard's warm caches).
        Request::Plan { origin, dest, .. } => {
            let key = origin.x.to_bits()
                ^ origin.y.to_bits().rotate_left(16)
                ^ dest.x.to_bits().rotate_left(32)
                ^ dest.y.to_bits().rotate_left(48);
            let shard = shard_for_key(key, sup.n_shards());
            let mut span = trace::span("shard.route");
            span.attr("shard", shard as u64);
            sup.call(shard, &request)
        }
    }
}

/// Scatter-gathers `Stats` from every live shard into one reply.
fn gather_stats(sup: &ShardSupervisor) -> Response {
    let n = sup.n_shards();
    let ctx = trace::current();
    let replies: Vec<Response> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    sup.call(i, &Request::Stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stats thread panicked")).collect()
    })
    .expect("stats scope");

    let stats: Vec<StatsReply> = replies
        .into_iter()
        .filter_map(|r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
        .collect();
    if stats.is_empty() {
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: "no shard answered stats".into(),
        };
    }
    Response::Stats(merge_stats(stats, sup.any_in_process()))
}

/// Scatter-gathers `TraceDump` from every shard and concatenates the
/// spans with the router's own ring. With in-process backends the fleet
/// shares one ring, so the local dump already covers everyone (fanning
/// out would return every span N+1 times). Shards that fail to answer
/// are skipped — a trace dump is diagnostic, not transactional.
fn gather_traces(sup: &ShardSupervisor, min_dur_ns: u64, set_capture_ns: Option<u64>) -> Response {
    if let Some(ns) = set_capture_ns {
        trace::set_capture_min_ns(ns);
    }
    if sup.any_in_process() {
        return Response::TraceDump(trace::dump(min_dur_ns));
    }
    let n = sup.n_shards();
    let request = Request::TraceDump { min_dur_ns, set_capture_ns };
    let ctx = trace::current();
    let replies: Vec<Response> = crossbeam::scope(|scope| {
        let request = &request;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    sup.call(i, request)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trace dump thread panicked")).collect()
    })
    .expect("trace dump scope");

    let mut spans: Vec<OwnedSpan> = trace::dump(min_dur_ns);
    for r in replies {
        if let Response::TraceDump(s) = r {
            spans.extend(s);
        }
    }
    Response::TraceDump(spans)
}

/// Merges per-shard stats. Engine-level fields (`pipeline_runs`,
/// `requests_served`, `workers`, `cached`) are per-engine state and
/// always sum/union. The metrics snapshot is registry state: with
/// out-of-process backends each reply carries a distinct registry and
/// they fold via [`MetricsSnapshot::merge`]; with in-process backends
/// every reply snapshot *is* this process's registry, so the local
/// snapshot stands alone (summing N copies would multiply every value
/// by the fleet size).
fn merge_stats(stats: Vec<StatsReply>, backends_share_registry: bool) -> StatsReply {
    let mut merged = StatsReply {
        pipeline_runs: 0,
        requests_served: 0,
        cached: Vec::new(),
        workers: 0,
        metrics: MetricsSnapshot::default(),
    };
    for s in &stats {
        merged.pipeline_runs += s.pipeline_runs;
        merged.requests_served += s.requests_served;
        merged.workers = merged.workers.saturating_add(s.workers);
        for &c in &s.cached {
            if !merged.cached.contains(&c) {
                merged.cached.push(c);
            }
        }
    }
    // Deterministic category order, independent of shard reply order.
    merged.cached.sort_by_key(|c| {
        staq_synth::PoiCategory::ALL.iter().position(|k| k == c).unwrap_or(usize::MAX)
    });
    if backends_share_registry {
        merged.metrics = staq_obs::snapshot();
    } else {
        for s in &stats {
            merged.metrics.merge(&s.metrics);
        }
        // The router's own registry (shard.* counters, per-backend
        // latency) rides along in the same reply.
        merged.metrics.merge(&staq_obs::snapshot());
    }
    merged
}

//! Minimal RFC-4180 CSV reader/writer.
//!
//! GTFS files are plain comma-separated tables with an obligatory header
//! row, optional quoted fields (quotes doubled inside), and no embedded
//! newlines in practice — though quoted newlines are handled anyway. A
//! purpose-built ~100-line codec avoids pulling a full CSV dependency into
//! the workspace (see DESIGN.md).

/// A parsed CSV table: header plus records, all owned strings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Data rows; every row has exactly `header.len()` fields.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Index of the column named `name`.
    pub fn col(&self, name: &str) -> Result<usize, String> {
        self.header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("missing column {name:?} (have {:?})", self.header))
    }

    /// Index of the column named `name`, or `None` when absent (optional
    /// GTFS columns).
    pub fn col_opt(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }
}

/// Parses CSV text into a [`Table`].
///
/// Errors on: empty input, unterminated quotes, or rows whose field count
/// differs from the header's.
pub fn parse(text: &str) -> Result<Table, String> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err("empty CSV: no header row".into());
    }
    let header = records.remove(0);
    let ncols = header.len();
    for (i, row) in records.iter().enumerate() {
        if row.len() != ncols {
            return Err(format!("row {} has {} fields, header has {ncols}", i + 2, row.len()));
        }
    }
    Ok(Table { header, rows: records })
}

fn parse_records(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut out: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Consumed as part of CRLF; a stray CR is treated as EOL too.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    row.push(std::mem::take(&mut field));
                    out.push(std::mem::take(&mut row));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    out.push(std::mem::take(&mut row));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    // Final record without trailing newline.
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        out.push(row);
    }
    if !saw_any {
        return Err("empty CSV: no header row".into());
    }
    // Drop fully-blank trailing lines (a common artifact of editors).
    out.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(out)
}

/// Serializes a header and rows to CSV text with `\n` line endings, quoting
/// only when needed.
pub fn write(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    write_row_borrowed(&mut s, header);
    for row in rows {
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        write_row_borrowed(&mut s, &refs);
    }
    s
}

fn write_row_borrowed(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_table() {
        let t = parse("a,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(t.header, vec!["a", "b", "c"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1], vec!["4", "5", "6"]);
    }

    #[test]
    fn handles_crlf_and_missing_final_newline() {
        let t = parse("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(t.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let t = parse("name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows[0][0], "Smith, John");
        assert_eq!(t.rows[0][1], "said \"hi\"");
    }

    #[test]
    fn quoted_newline_inside_field() {
        let t = parse("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.rows[0][0], "line1\nline2");
    }

    #[test]
    fn empty_fields_preserved() {
        let t = parse("a,b,c\n,,\n").unwrap();
        assert_eq!(t.rows[0], vec!["", "", ""]);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(parse("a,b\n1,2,3\n").is_err());
        assert!(parse("a,b\n1\n").is_err());
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse("a,b\n\"oops,2\n").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
    }

    #[test]
    fn col_lookup() {
        let t = parse("x,y\n1,2\n").unwrap();
        assert_eq!(t.col("y").unwrap(), 1);
        assert!(t.col("z").is_err());
        assert_eq!(t.col_opt("x"), Some(0));
        assert_eq!(t.col_opt("nope"), None);
    }

    #[test]
    fn write_quotes_only_when_needed() {
        let text = write(
            &["a", "b"],
            &[
                vec!["plain".into(), "needs,quote".into()],
                vec!["has\"q".into(), "multi\nline".into()],
            ],
        );
        assert_eq!(text, "a,b\nplain,\"needs,quote\"\n\"has\"\"q\",\"multi\nline\"\n");
    }

    #[test]
    fn roundtrip_through_parse() {
        let rows = vec![
            vec!["1".to_string(), "He said \"no\", twice".to_string()],
            vec!["2".to_string(), "".to_string()],
        ];
        let text = write(&["id", "note"], &rows);
        let t = parse(&text).unwrap();
        assert_eq!(t.rows, rows);
    }

    #[test]
    fn trailing_blank_lines_ignored() {
        let t = parse("a,b\n1,2\n\n\n").unwrap();
        assert_eq!(t.rows.len(), 1);
    }
}

//! Reproducibility: every stage of the stack is a pure function of its
//! seeds. Bit-for-bit determinism is what makes the experiment tables in
//! EXPERIMENTS.md checkable.

use staq_repro::prelude::*;

#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let city = City::generate(&CityConfig::tiny(99));
        let spec = TodamSpec { per_hour: 4, ..Default::default() };
        let artifacts = OfflineArtifacts::build(
            &city,
            &spec.interval,
            &staq_repro::road::IsochroneParams::default(),
        );
        let cfg =
            PipelineConfig { beta: 0.3, model: ModelKind::Mlp, todam: spec, ..Default::default() };
        let r = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School);
        r.predicted
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_actually_matter() {
    let city_a = City::generate(&CityConfig::tiny(1));
    let city_b = City::generate(&CityConfig::tiny(2));
    assert_ne!(city_a.zones, city_b.zones);
    assert!(
        city_a.feed.feed().stop_times.len() != city_b.feed.feed().stop_times.len()
            || city_a.feed.feed() != city_b.feed.feed(),
        "different seeds must produce different feeds"
    );
}

#[test]
fn pipeline_seed_changes_sample_not_truth() {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 4, ..Default::default() };
    let artifacts = OfflineArtifacts::build(
        &city,
        &spec.interval,
        &staq_repro::road::IsochroneParams::default(),
    );
    let run = |seed: u64| {
        let cfg = PipelineConfig {
            beta: 0.2,
            model: ModelKind::Ols,
            todam: spec.clone(),
            seed,
            ..Default::default()
        };
        SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.labeled, b.labeled, "different seeds draw different labeled sets");
    // Ground-truth labels for a zone are seed-independent: where the two
    // labeled sets overlap, the stats must agree exactly.
    for (za, sa) in a.labeled.iter().zip(&a.labeled_stats) {
        if let Some(pos) = b.labeled.iter().position(|zb| zb == za) {
            assert_eq!(sa, &b.labeled_stats[pos]);
        }
    }
}

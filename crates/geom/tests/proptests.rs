//! Property-based tests for the geometry crate: the kd-tree must agree with
//! brute force, hulls must be convex and covering, and boxes must behave like
//! set unions.

use proptest::prelude::*;
use staq_geom::{convex_hull, BBox, GridIndex, KdTree, Point};

fn pt() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn pts(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(pt(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_nearest_matches_brute_force(points in pts(200), q in pt()) {
        let items: Vec<(Point, u32)> =
            points.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        let tree = KdTree::build(&items);
        let best = tree.nearest(&q).unwrap();
        let brute = points
            .iter()
            .map(|p| p.dist2(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((best.dist2 - brute).abs() < 1e-9);
    }

    #[test]
    fn kdtree_knn_matches_brute_force(points in pts(120), q in pt(), k in 1usize..12) {
        let items: Vec<(Point, u32)> =
            points.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        let tree = KdTree::build(&items);
        let got = tree.k_nearest(&q, k);
        let mut d2s: Vec<f64> = points.iter().map(|p| p.dist2(&q)).collect();
        d2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want = &d2s[..k.min(d2s.len())];
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            prop_assert!((g.dist2 - w).abs() < 1e-9);
        }
    }

    #[test]
    fn kdtree_radius_matches_brute_force(points in pts(150), q in pt(), r in 0.0f64..500.0) {
        let items: Vec<(Point, u32)> =
            points.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        let tree = KdTree::build(&items);
        let mut got: Vec<u32> = tree.within_radius(&q, r).iter().map(|n| n.item).collect();
        let mut want: Vec<u32> = items
            .iter()
            .filter(|(p, _)| p.dist(&q) <= r)
            .map(|&(_, i)| i)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_radius_matches_kdtree(points in pts(150), q in pt(), r in 1.0f64..400.0) {
        let items: Vec<(Point, u32)> =
            points.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        let grid = GridIndex::build(&items, 75.0);
        let tree = KdTree::build(&items);
        let mut got: Vec<u32> = grid.within_radius(&q, r).iter().map(|&(i, _)| i).collect();
        let mut want: Vec<u32> = tree.within_radius(&q, r).iter().map(|n| n.item).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hull_covers_all_points(points in pts(80)) {
        let hull = convex_hull(&points);
        if hull.len() >= 3 {
            let poly = staq_geom::Polygon::new(hull.clone());
            // Every input point is inside the hull or within epsilon of its
            // boundary (vertices themselves may ray-cast as outside).
            for p in &points {
                let inside = poly.contains(p)
                    || hull.iter().any(|v| v.dist(p) < 1e-6)
                    || on_boundary(&hull, p);
                prop_assert!(inside, "{p:?} escaped its own hull");
            }
        }
    }

    #[test]
    fn hull_is_convex(points in pts(80)) {
        let hull = convex_hull(&points);
        if hull.len() >= 3 {
            let n = hull.len();
            for i in 0..n {
                let a = hull[i];
                let b = hull[(i + 1) % n];
                let c = hull[(i + 2) % n];
                let cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
                prop_assert!(cross > -1e-9, "reflex vertex in hull");
            }
        }
    }

    #[test]
    fn bbox_union_contains_both(a in pts(40), b in pts(40)) {
        let mut ba = BBox::of_points(&a);
        let bb = BBox::of_points(&b);
        ba.union(&bb);
        for p in a.iter().chain(b.iter()) {
            prop_assert!(ba.contains(p));
        }
    }

    #[test]
    fn bbox_dist2_is_zero_iff_contained(points in pts(40), q in pt()) {
        let b = BBox::of_points(&points);
        if b.contains(&q) {
            prop_assert_eq!(b.dist2_to(&q), 0.0);
        } else {
            prop_assert!(b.dist2_to(&q) > 0.0);
        }
    }
}

/// Distance from `p` to the closed polyline boundary below `eps`.
fn on_boundary(ring: &[Point], p: &Point) -> bool {
    let n = ring.len();
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        let ab2 = a.dist2(&b);
        let t = if ab2 == 0.0 {
            0.0
        } else {
            (((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / ab2).clamp(0.0, 1.0)
        };
        let proj = a.lerp(&b, t);
        if proj.dist(p) < 1e-6 {
            return true;
        }
    }
    false
}

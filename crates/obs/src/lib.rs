//! # staq-obs
//!
//! Zero-dependency metrics & tracing for the STAQ workspace. The paper's
//! cost analysis (§IV-E) says SPQ labeling dominates end-to-end runtime;
//! this crate makes "where do the seconds go" answerable in-process and
//! over the wire, without taking a lock on any hot path.
//!
//! Three pieces:
//!
//! * [`registry`] — `static`-declared [`Counter`]s, [`Gauge`]s and
//!   concurrent [`AtomicHistogram`]s that self-register on first touch.
//!   Recording is relaxed atomics only; [`snapshot()`] assembles the
//!   registry's state on demand without blocking writers.
//! * [`hist`] — the log-bucketed mergeable [`LatencyHistogram`]
//!   (previously in `staq-bench`, re-exported there for compatibility)
//!   plus the bucket math shared with the atomic variant.
//! * [`snapshot`] — [`MetricsSnapshot`], the serde-typed interchange view
//!   with a hand-rolled JSON codec (`to_json`/`from_json`) for
//!   `BENCH_*.json` trajectories and the serve `Stats` frame.
//! * [`trace`] — staq-trace: per-query spans in a lock-free seqlock ring,
//!   with a propagatable [`SpanContext`] that crosses threads by value
//!   and processes via the wire protocol's v3 frame header.
//! * [`prom`] / [`http`] — the ops scrape surface: Prometheus text
//!   exposition of a snapshot and the std-only `--metrics-addr`
//!   listener that serves it.
//! * [`window`] / [`slo`] / [`slow`] / [`ops`] — staq-ops: windowed
//!   snapshot deltas ("p99 *right now*", not since boot), declarative
//!   per-class SLOs with fast/slow burn rates, tail-sampled slow-trace
//!   retention, and the mergeable [`OpsReport`] the serving layer
//!   exposes fleet-wide.
//!
//! Instrumentation cost: a counter bump is one relaxed `fetch_add` plus a
//! relaxed flag load; a histogram record is three; an untraced span is a
//! thread-local read. Building with the `obs-off` feature compiles every
//! recording call — metrics and spans — to a no-op so the overhead
//! itself is benchmarkable.

pub mod hist;
pub mod http;
pub mod ops;
pub mod prom;
pub mod registry;
pub mod slo;
pub mod slow;
pub mod snapshot;
pub mod trace;
pub mod window;

pub use hist::{fmt_dur, LatencyHistogram};
pub use http::{serve_prometheus, ScrapeHandle};
pub use ops::{BurnWindow, ClassWindow, OpsReport, SloStatus};
pub use registry::{snapshot, AtomicHistogram, Counter, Gauge, ScopedTimer};
pub use slo::{SloClass, SloSpec};
pub use slow::SlowTrace;
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, JsonError, MetricsSnapshot};
pub use trace::{OwnedSpan, SpanContext, TraceId};
pub use window::WindowRing;

/// True when the crate was built with recording compiled in (i.e. the
/// `obs-off` feature is absent) — benches stamp this into their reports
/// so a "fast" run can't silently be an uninstrumented one.
pub const fn obs_enabled() -> bool {
    cfg!(not(feature = "obs-off"))
}

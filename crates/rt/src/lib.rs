//! # staq-rt
//!
//! Live timetable streaming over an [`AccessEngine`]: the GTFS-RT-shaped
//! half of the paper's "dynamic" claim. An [`RtEngine`] wraps a shared
//! engine with a **monotonic delta log** — every accepted [`Delta`] gets a
//! 1-based sequence number, and replaying the log onto a fresh engine
//! reproduces the live engine's state bit-for-bit (the equivalence the
//! root `rt_stream` / `scenario_edits` tests gate).
//!
//! Sequence numbers are what let replicas converge deterministically:
//!
//! * [`RtEngine::apply`] — assign the next sequence number and apply
//!   incrementally (the origin of an edit).
//! * [`RtEngine::apply_at`] — apply a delta *at* a sequence number
//!   (a replica following a broadcast): already-seen numbers are
//!   idempotently skipped, the next number is applied, and anything
//!   further ahead is a [`RtError::Gap`] telling the caller to resend the
//!   missing tail ([`RtEngine::log_tail`]).
//! * [`RtEngine::apply_batch`] — a contiguous run of deltas, the catch-up
//!   payload (`DeltaBatch` on the wire).
//!
//! The what-if half ([`RtEngine::what_if`]) forwards to
//! [`AccessEngine::what_if`] and accounts the copy-on-write overlay cost in
//! `rt.scenario.overlay_bytes`.

use parking_lot::Mutex;
use staq_core::engine::{DeltaApplied, ScenarioOutcome};
use staq_core::AccessEngine;
use staq_gtfs::Delta;
use staq_obs::Counter;
use staq_synth::PoiCategory;
use std::sync::Arc;

/// Deltas accepted into the log (origin or replica side).
static DELTAS_APPLIED: Counter = Counter::new("rt.deltas_applied");
/// Engine result-cache invalidations caused by streamed deltas
/// (category epochs bumped).
static INVAL_ENGINE: Counter = Counter::new("rt.invalidations.engine");
/// Access-artifact invalidations: zones whose hop trees were rebuilt.
static INVAL_ACCESS: Counter = Counter::new("rt.invalidations.access");
/// Pattern invalidations: structural deltas that force the per-run RAPTOR
/// pattern extraction to see a changed feed.
static INVAL_PATTERN: Counter = Counter::new("rt.invalidations.pattern");
/// Bytes materialized by what-if scenario overlays (vs cloning engines).
static OVERLAY_BYTES: Counter = Counter::new("rt.scenario.overlay_bytes");

/// Why a streamed delta was not applied.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// The caller is ahead of this log: it asked to apply `got` but the log
    /// only has `have` entries. Recover by resending `log_tail(have)`.
    Gap { have: u64, got: u64 },
    /// The engine rejected the delta (unknown id, bad geometry); the world
    /// and the log are untouched.
    Rejected(String),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Gap { have, got } => {
                write!(f, "sequence gap: have {have}, got {got}; resend from {}", have + 1)
            }
            RtError::Rejected(msg) => write!(f, "delta rejected: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Receipt for one accepted (or idempotently skipped) delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Applied {
    /// The delta's position in the log (1-based).
    pub seq: u64,
    /// What applying it invalidated; `None` when the sequence number was
    /// already in the log and the delta was skipped as a replay.
    pub receipt: Option<DeltaApplied>,
}

/// A sequenced streaming front over a shared [`AccessEngine`].
///
/// The log mutex is held across the engine mutation so the log order *is*
/// the application order — concurrent publishers serialize here, queries
/// keep flowing through the engine's own read path.
pub struct RtEngine {
    engine: Arc<AccessEngine>,
    log: Mutex<Vec<Delta>>,
}

impl RtEngine {
    /// Wraps `engine` with an empty delta log.
    pub fn new(engine: Arc<AccessEngine>) -> Self {
        RtEngine { engine, log: Mutex::new(Vec::new()) }
    }

    /// The wrapped engine (queries go straight through).
    pub fn engine(&self) -> &Arc<AccessEngine> {
        &self.engine
    }

    /// Highest sequence number in the log (0 when empty).
    pub fn seq(&self) -> u64 {
        self.log.lock().len() as u64
    }

    /// Log entries *after* sequence number `after`, i.e. the catch-up tail
    /// a replica at `after` needs. `log_tail(0)` is the whole log.
    pub fn log_tail(&self, after: u64) -> Vec<Delta> {
        let log = self.log.lock();
        log.get(after as usize..).map_or_else(Vec::new, <[Delta]>::to_vec)
    }

    /// Applies `delta` as the next log entry, assigning its sequence
    /// number. This is [`apply_at`](Self::apply_at) with `seq = 0`.
    pub fn apply(&self, delta: Delta) -> Result<Applied, RtError> {
        self.apply_at(0, delta)
    }

    /// Applies `delta` at sequence number `seq` (0 = assign the next one).
    ///
    /// * `seq <= log length` — already seen: idempotent no-op (`receipt:
    ///   None`), so retried broadcasts cannot double-apply.
    /// * `seq == log length + 1` — the expected next entry: applied.
    /// * beyond that — [`RtError::Gap`].
    pub fn apply_at(&self, seq: u64, delta: Delta) -> Result<Applied, RtError> {
        let mut span = staq_obs::trace::span("rt.apply");
        let mut log = self.log.lock();
        let have = log.len() as u64;
        let seq = if seq == 0 { have + 1 } else { seq };
        span.attr("seq", seq);
        if seq <= have {
            return Ok(Applied { seq, receipt: None });
        }
        if seq > have + 1 {
            return Err(RtError::Gap { have, got: seq });
        }
        let receipt = self.engine.apply_delta(&delta).map_err(RtError::Rejected)?;
        log.push(delta);
        DELTAS_APPLIED.inc();
        INVAL_ENGINE.add(receipt.invalidated as u64);
        INVAL_ACCESS.add(receipt.zones_rebuilt as u64);
        if receipt.structural {
            INVAL_PATTERN.inc();
        }
        Ok(Applied { seq, receipt: Some(receipt) })
    }

    /// Applies a contiguous batch starting at `first_seq` (the `DeltaBatch`
    /// wire payload). Already-seen prefixes are skipped idempotently;
    /// returns the receipt of the last entry, or the first error.
    pub fn apply_batch(&self, first_seq: u64, deltas: &[Delta]) -> Result<Applied, RtError> {
        assert!(first_seq >= 1, "batches carry explicit sequence numbers");
        let mut last = Applied { seq: first_seq.saturating_sub(1), receipt: None };
        for (i, delta) in deltas.iter().enumerate() {
            last = self.apply_at(first_seq + i as u64, delta.clone())?;
        }
        Ok(last)
    }

    /// Evaluates counterfactual scenarios against the live engine — see
    /// [`AccessEngine::what_if`]. Overlay materialization is accounted in
    /// `rt.scenario.overlay_bytes`.
    pub fn what_if(
        &self,
        category: PoiCategory,
        scenarios: &[Vec<Delta>],
    ) -> Result<Vec<ScenarioOutcome>, RtError> {
        let mut span = staq_obs::trace::span("rt.whatif");
        span.attr("scenarios", scenarios.len() as u64);
        let out = self.engine.what_if(category, scenarios).map_err(RtError::Rejected)?;
        let bytes: u64 = out.iter().map(|s| s.overlay.overlay_bytes as u64).sum();
        OVERLAY_BYTES.add(bytes);
        span.attr("overlay_bytes", bytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_core::PipelineConfig;
    use staq_gtfs::model::TripId;
    use staq_ml::ModelKind;
    use staq_synth::{City, CityConfig};
    use staq_todam::TodamSpec;

    fn rt() -> RtEngine {
        let city = City::generate(&CityConfig::small(42));
        let config = PipelineConfig {
            beta: 0.2,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        RtEngine::new(Arc::new(AccessEngine::new(city, config)))
    }

    #[test]
    fn log_assigns_monotonic_seqs_and_skips_replays() {
        let rt = rt();
        let d1 = Delta::TripDelay { trip: TripId(0), delay_secs: 60 };
        let d2 = Delta::ServiceAlert { route: staq_gtfs::model::RouteId(0), message: "x".into() };
        let a1 = rt.apply(d1.clone()).expect("first delta");
        assert_eq!(a1.seq, 1);
        assert!(a1.receipt.expect("applied").structural);
        let a2 = rt.apply(d2.clone()).expect("second delta");
        assert_eq!(a2.seq, 2);
        assert!(!a2.receipt.expect("applied").structural);
        assert_eq!(rt.seq(), 2);
        assert_eq!(rt.log_tail(0), vec![d1.clone(), d2.clone()]);
        assert_eq!(rt.log_tail(1), vec![d2.clone()]);
        assert!(rt.log_tail(9).is_empty());

        // Replaying an already-logged seq is a no-op, not a double apply.
        let replay = rt.apply_at(1, d1).expect("replay ok");
        assert_eq!(replay, Applied { seq: 1, receipt: None });
        assert_eq!(rt.seq(), 2);

        // A future seq is a gap with a resend hint.
        let gap = rt.apply_at(5, d2).expect_err("gap");
        assert_eq!(gap, RtError::Gap { have: 2, got: 5 });
        assert!(gap.to_string().contains("resend from 3"), "{gap}");
    }

    #[test]
    fn rejected_deltas_leave_log_and_world_untouched() {
        let rt = rt();
        let bogus = Delta::TripCancel { trip: TripId(999_999) };
        let err = rt.apply(bogus).expect_err("unknown trip");
        assert!(matches!(err, RtError::Rejected(_)), "{err:?}");
        assert_eq!(rt.seq(), 0);
        assert!(rt.log_tail(0).is_empty());
    }

    #[test]
    fn batches_catch_a_replica_up_idempotently() {
        let origin = rt();
        let replica = rt();
        let deltas = vec![
            Delta::TripDelay { trip: TripId(1), delay_secs: 120 },
            Delta::TripCancel { trip: TripId(2) },
            Delta::TripDelay { trip: TripId(3), delay_secs: 300 },
        ];
        for d in &deltas {
            origin.apply(d.clone()).expect("origin apply");
        }
        // Replica saw only the first delta, then receives the full batch.
        replica.apply_at(1, deltas[0].clone()).expect("replica first");
        let last = replica.apply_batch(1, &deltas).expect("catch-up batch");
        assert_eq!(last.seq, 3);
        assert_eq!(replica.seq(), origin.seq());
        assert_eq!(replica.log_tail(0), origin.log_tail(0));
        // A batch from the future is a gap.
        let gap = replica.apply_batch(5, &deltas[..1]).expect_err("gap");
        assert_eq!(gap, RtError::Gap { have: 3, got: 5 });
    }
}

//! **Fig. 4** — GAC performance on vaccination centers: MAC correlation,
//! ACSD correlation, classification accuracy and fairness-index error per
//! model × β × city.
//!
//! ```text
//! cargo run --release -p staq-bench --bin fig4 -- --scale 0.06
//! ```
//!
//! Paper shape to verify: MAC corr high and robust (MLP best); ACSD corr
//! less reliable and dropping at low β (walk-only-trip effect, stronger in
//! Coventry); accuracy > 50–60 % for MLP at β ≥ 5 % in Birmingham; FIE low
//! everywhere.

use staq_bench::{birmingham, coventry, BenchArgs, CsvOut};
use staq_core::{evaluate, NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_ml::ModelKind;
use staq_synth::PoiCategory;
use staq_todam::TodamSpec;
use staq_transit::CostKind;

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.06, ..Default::default() });
    let betas: &[f64] = if args.quick { &[0.05, 0.1, 0.3] } else { &PipelineConfig::BETA_SWEEP };
    let models: &[ModelKind] =
        if args.quick { &[ModelKind::Ols, ModelKind::Mlp] } else { &ModelKind::ALL };
    let spec = TodamSpec { per_hour: 5, ..Default::default() };
    let category = PoiCategory::VaxCenter;

    let mut csv =
        CsvOut::new(&["city", "model", "beta", "mac_corr", "acsd_corr", "accuracy", "fie"]);
    println!("== Fig. 4: GAC performance, vaccination centers (scale {}) ==", args.scale);

    for city in [birmingham(&args), coventry(&args)] {
        let artifacts =
            OfflineArtifacts::build(&city, &spec.interval, &staq_road::IsochroneParams::default());
        let truth = NaiveResult::compute(&city, &spec, category, CostKind::Gac);
        println!(
            "\n{} (|Z|={}, gravity trips={})",
            city.config.name,
            city.n_zones(),
            truth.n_trips
        );
        println!(
            "{:>6} {:>6} {:>9} {:>10} {:>9} {:>8}",
            "model", "beta%", "MAC corr", "ACSD corr", "accuracy", "FIE"
        );
        for &model in models {
            for &beta in betas {
                let cfg = PipelineConfig {
                    beta,
                    model,
                    cost: CostKind::Gac,
                    todam: spec.clone(),
                    seed: args.seed,
                    ..Default::default()
                };
                let result = SsrPipeline::new(&city, &artifacts, cfg).run(category);
                let r = evaluate(&truth, &result);
                println!(
                    "{:>6} {:>6.0} {:>9.3} {:>10.3} {:>9.2} {:>8.4}",
                    model.label(),
                    beta * 100.0,
                    r.mac_corr,
                    r.acsd_corr,
                    r.class_accuracy,
                    r.fie
                );
                csv.row(&[
                    city.config.name.clone(),
                    model.label().to_string(),
                    format!("{beta}"),
                    format!("{:.4}", r.mac_corr),
                    format!("{:.4}", r.acsd_corr),
                    format!("{:.4}", r.class_accuracy),
                    format!("{:.5}", r.fie),
                ]);
            }
        }
    }
    csv.maybe_write(&args.out);
}

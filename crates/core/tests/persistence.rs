//! Artifact persistence integration: a pipeline fed with disk-loaded
//! artifacts must produce bit-identical results to one fed with freshly
//! built artifacts.

use staq_core::{OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_gtfs::time::TimeInterval;
use staq_ml::ModelKind;
use staq_road::IsochroneParams;
use staq_synth::{City, CityConfig, PoiCategory};
use staq_todam::TodamSpec;

#[test]
fn loaded_artifacts_reproduce_pipeline_results() {
    let city = City::generate(&CityConfig::tiny(21));
    let fresh =
        OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
    let path = std::env::temp_dir().join(format!("staq_persist_{}.txt", std::process::id()));
    fresh.save_trees(&path).unwrap();
    let loaded = OfflineArtifacts::load_trees(&city, &path).unwrap();

    let cfg = PipelineConfig {
        beta: 0.3,
        model: ModelKind::Mlp,
        todam: TodamSpec { per_hour: 4, ..Default::default() },
        ..Default::default()
    };
    let a = SsrPipeline::new(&city, &fresh, cfg.clone()).run(PoiCategory::School);
    let b = SsrPipeline::new(&city, &loaded, cfg).run(PoiCategory::School);
    assert_eq!(a.labeled, b.labeled);
    assert_eq!(a.predicted, b.predicted);
    std::fs::remove_file(&path).ok();
}

//! The staq-serve daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers N] [--city birmingham|coventry|test]
//!       [--scale f] [--seed u64] [--queue-depth N] [--port-file path]
//!       [--metrics-addr host:port]
//! ```
//!
//! Builds the city and its offline artifacts (the expensive step), then
//! serves access queries and scenario edits until SIGINT/EOF on stdin.
//!
//! `--port-file` writes the bound address (useful with `--addr :0`) to a
//! file once the listener is up — how the staq-shard supervisor discovers
//! the port of a backend it spawned. The write is atomic (temp file +
//! rename) so a poller never reads a half-written address.
//!
//! `--metrics-addr` additionally serves the process's metrics registry as
//! Prometheus text on `GET /metrics` — the ops scrape surface.

use staq_serve::presets::CityPreset;
use staq_serve::{serve, ServerConfig};

struct Args {
    cfg: ServerConfig,
    city: CityPreset,
    scale: f64,
    seed: u64,
    port_file: Option<String>,
    metrics_addr: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ServerConfig { addr: "127.0.0.1:7878".into(), ..Default::default() },
        city: CityPreset::Test,
        scale: 0.05,
        seed: 42,
        port_file: None,
        metrics_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.cfg.addr = need(&mut it, "--addr"),
            "--workers" => args.cfg.workers = parse(&mut it, "--workers"),
            "--queue-depth" => args.cfg.queue_depth = parse(&mut it, "--queue-depth"),
            "--city" => {
                let v = need(&mut it, "--city");
                args.city =
                    CityPreset::parse(&v).unwrap_or_else(|| usage(&format!("unknown city {v:?}")));
            }
            "--scale" => args.scale = parse(&mut it, "--scale"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--port-file" => args.port_file = Some(need(&mut it, "--port-file")),
            "--metrics-addr" => args.metrics_addr = Some(need(&mut it, "--metrics-addr")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.cfg.workers == 0 {
        usage("--workers must be at least 1");
    }
    if !(args.scale > 0.0 && args.scale <= 1.0) {
        usage("--scale must be in (0, 1]");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: serve [--addr host:port] [--workers N] [--queue-depth N] \
         [--city birmingham|coventry|test] [--scale f] [--seed u64] [--port-file path] \
         [--metrics-addr host:port]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building {} city (scale {}, seed {}) and offline artifacts...",
        args.city, args.scale, args.seed
    );
    let t0 = std::time::Instant::now();
    let engine = args.city.engine(args.scale, args.seed);
    eprintln!(
        "ready in {:.1}s: {} zones, {} POIs",
        t0.elapsed().as_secs_f64(),
        engine.city().n_zones(),
        engine.city().pois.len()
    );

    let mut handle = serve(engine, &args.cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", args.cfg.addr);
        std::process::exit(1);
    });
    eprintln!(
        "listening on {} ({} workers, queue depth {}); close stdin to stop",
        handle.addr(),
        args.cfg.workers,
        args.cfg.queue_depth
    );
    if let Some(path) = &args.port_file {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write port file {path}: {e}");
                std::process::exit(1);
            });
    }
    let _scrape = args.metrics_addr.as_ref().map(|addr| {
        let h = staq_obs::serve_prometheus(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind metrics listener {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics on http://{}/metrics", h.addr());
        h
    });

    // Foreground daemon: block until stdin closes (^D, or the supervisor
    // hanging up), then drain and exit.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    eprintln!("shutting down...");
    handle.shutdown();
}

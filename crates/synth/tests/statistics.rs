//! Distributional sanity of the synthetic city across seeds: the generator
//! must reliably produce the structures the pipeline's assumptions rest on.

use staq_gtfs::time::TimeInterval;
use staq_gtfs::StopId;
use staq_synth::{City, CityConfig, PoiCategory};

#[test]
fn every_seed_yields_a_serviceable_city() {
    for seed in [3u64, 47, 1001] {
        let city = City::generate(&CityConfig::small(seed));
        // Transit coverage: a large majority of zones are within 800m of a
        // stop (the paper's walkability precondition).
        let stops: Vec<_> = city.feed.stop_points();
        let covered = city
            .zones
            .iter()
            .filter(|z| stops.iter().any(|(p, _)| p.dist(&z.centroid) < 800.0))
            .count();
        // A 120-zone city with 8 routes leaves some periphery uncovered by
        // design (those zones are the access deserts the queries hunt for);
        // a solid majority must still be served.
        assert!(
            covered * 10 >= city.n_zones() * 7,
            "seed {seed}: only {covered}/{} zones near a stop",
            city.n_zones()
        );
        // AM peak service exists at a good share of stops.
        let am = TimeInterval::am_peak();
        let active = (0..city.feed.n_stops() as u32)
            .filter(|&s| city.feed.departures_at(StopId(s), &am).next().is_some())
            .count();
        assert!(
            active * 10 >= city.feed.n_stops() * 9,
            "seed {seed}: {active}/{} stops active in AM peak",
            city.feed.n_stops()
        );
    }
}

#[test]
fn poi_density_follows_population() {
    // Aggregated over seeds: zones in the top population quartile should
    // host disproportionately many schools.
    let mut top_quartile_share = 0.0;
    let seeds = [5u64, 6, 7];
    for &seed in &seeds {
        let city = City::generate(&CityConfig::small(seed));
        let mut pops: Vec<f64> = city.zones.iter().map(|z| z.population).collect();
        pops.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let cut = pops[city.n_zones() / 4];
        let schools = city.pois_of(PoiCategory::School);
        let in_top = schools.iter().filter(|p| city.zones[p.zone.idx()].population >= cut).count();
        top_quartile_share += in_top as f64 / schools.len() as f64;
    }
    top_quartile_share /= seeds.len() as f64;
    assert!(
        top_quartile_share > 0.35,
        "top population quartile hosts only {:.0}% of schools",
        top_quartile_share * 100.0
    );
}

#[test]
fn demographics_gradient_points_outward() {
    let city = City::generate(&CityConfig::small(9));
    let center = city.cores[0];
    let half = city.config.side_m * 0.25;
    let (mut inner, mut outer) = (Vec::new(), Vec::new());
    for z in &city.zones {
        if z.centroid.dist(&center) < half {
            inner.push(z.demographics.pct_unemployed);
        } else {
            outer.push(z.demographics.pct_unemployed);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&outer) > mean(&inner),
        "unemployment should rise toward the periphery: inner {:.3} outer {:.3}",
        mean(&inner),
        mean(&outer)
    );
}

#[test]
fn scaling_preserves_densities() {
    let full = CityConfig::birmingham(1);
    let scaled = full.scaled(0.04);
    let d_full = full.n_zones as f64 / (full.side_m * full.side_m);
    let d_scaled = scaled.n_zones as f64 / (scaled.side_m * scaled.side_m);
    assert!(
        (d_full - d_scaled).abs() / d_full < 0.05,
        "zone density drifted: {d_full:e} vs {d_scaled:e}"
    );
}

//! The prepared multimodal network shared by both routers.
//!
//! Construction extracts **trip patterns** (maximal groups of trips on one
//! route with an identical stop sequence — the unit RAPTOR scans), flattens
//! their timetables into dense arrival/departure matrices, snaps stops to
//! road nodes, and precomputes stop-to-stop foot transfers.

use serde::{Deserialize, Serialize};
use staq_geom::{KdTree, Point};
use staq_gtfs::model::{RouteId, StopId, TripId};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::FeedIndex;
use staq_obs::Counter;
use staq_road::{dijkstra, NodeId, NodeSnapper, RoadGraph};
use std::collections::HashMap;

/// Access-isochrone memo lookups answered from the cache.
static ACCESS_CACHE_HIT: Counter = Counter::new("transit.access_cache.hit");
/// Access-isochrone memo lookups that ran the road-graph Dijkstra.
static ACCESS_CACHE_MISS: Counter = Counter::new("transit.access_cache.miss");

/// Router parameters. Defaults mirror the paper's walking parameters
/// (τ = 600 s, ω = 4.5 km/h) and a standard 3-transfer search depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Maximum number of boardings (rides); RAPTOR runs this many rounds.
    pub max_boardings: usize,
    /// Walking budget to reach the first stop / leave the last stop, secs.
    pub access_budget_secs: f64,
    /// Maximum interchange walk between stops, secs.
    pub transfer_walk_secs: f64,
    /// Walking speed ω, m/s.
    pub omega_mps: f64,
    /// Crow-flies → street-distance factor for stop-to-stop transfer walks
    /// and the direct-walk fallback.
    pub walk_detour: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_boardings: 4,
            access_budget_secs: staq_road::DEFAULT_TAU_SECS,
            transfer_walk_secs: 240.0,
            omega_mps: staq_road::DEFAULT_OMEGA_MPS,
            walk_detour: 1.25,
        }
    }
}

/// A trip pattern: trips of one route sharing an exact stop sequence.
#[derive(Debug, Clone)]
pub struct Pattern {
    pub route: RouteId,
    /// Ordered stops of the pattern.
    pub stops: Vec<StopId>,
    /// Trips sorted by departure time at the first stop.
    pub trips: Vec<TripId>,
    /// Flattened `trips.len() x stops.len()` arrival matrix.
    arrivals: Vec<Stime>,
    /// Flattened departures, same layout.
    departures: Vec<Stime>,
    /// Bit `DayOfWeek::index()` set when at least one trip runs that day.
    /// Lets the router skip whole patterns on no-service days before they
    /// are ever enqueued.
    service_days: u8,
}

impl Pattern {
    /// Arrival of trip index `t` (within this pattern) at stop position `i`.
    #[inline]
    pub fn arrival(&self, t: usize, i: usize) -> Stime {
        self.arrivals[t * self.stops.len() + i]
    }

    /// Departure of trip index `t` at stop position `i`.
    #[inline]
    pub fn departure(&self, t: usize, i: usize) -> Stime {
        self.departures[t * self.stops.len() + i]
    }

    /// Index (within this pattern) of the earliest trip departing stop
    /// position `i` at or after `t` and running on `day`.
    pub fn earliest_trip(
        &self,
        i: usize,
        t: Stime,
        day: DayOfWeek,
        feed: &FeedIndex,
    ) -> Option<usize> {
        // Trips are sorted by first-stop departure and never overtake within
        // a pattern (enforced in `check_no_overtaking` during build), so the
        // departures at any fixed position are sorted too: binary search.
        let n = self.trips.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.departure(mid, i) < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo..n).find(|&k| feed.trip_runs_on(self.trips[k], day))
    }

    /// True when at least one of this pattern's trips runs on `day`.
    /// Precomputed at network build; a pattern with no service can never
    /// board, so skipping it entirely is exact.
    #[inline]
    pub fn runs_on(&self, day: DayOfWeek) -> bool {
        self.service_days & (1u8 << day.index()) != 0
    }
}

/// A foot transfer to another stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    pub to: StopId,
    pub walk_secs: u32,
}

/// The prepared multimodal network.
pub struct TransitNetwork<'a> {
    pub road: &'a RoadGraph,
    pub feed: &'a FeedIndex,
    pub cfg: RouterConfig,
    patterns: Vec<Pattern>,
    /// For each stop: `(pattern index, position within pattern)` pairs.
    patterns_at_stop: Vec<Vec<(u32, u32)>>,
    /// Road node each stop snaps to.
    stop_node: Vec<NodeId>,
    /// Stops at a given road node (reverse of `stop_node`).
    node_stops: HashMap<u32, Vec<StopId>>,
    /// Foot transfers per stop.
    transfers: Vec<Vec<Transfer>>,
    snapper: NodeSnapper,
}

impl<'a> TransitNetwork<'a> {
    /// Prepares the network. Panics if a pattern's trips overtake each other
    /// (violates RAPTOR's scan invariant; cannot happen with feeds from
    /// `staq-synth`, and real feeds that overtake would need pattern
    /// splitting — out of scope and loudly rejected rather than silently
    /// mis-routed).
    pub fn new(road: &'a RoadGraph, feed: &'a FeedIndex, cfg: RouterConfig) -> Self {
        let patterns = build_patterns(feed);
        for p in &patterns {
            check_no_overtaking(p);
        }
        let n_stops = feed.n_stops();
        let mut patterns_at_stop: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_stops];
        for (pi, p) in patterns.iter().enumerate() {
            for (pos, s) in p.stops.iter().enumerate() {
                patterns_at_stop[s.idx()].push((pi as u32, pos as u32));
            }
        }

        let snapper = NodeSnapper::new(road);
        let mut stop_node = Vec::with_capacity(n_stops);
        let mut node_stops: HashMap<u32, Vec<StopId>> = HashMap::new();
        for s in 0..n_stops {
            let node = snapper.snap_unchecked(&feed.stop_pos(StopId(s as u32)));
            stop_node.push(node);
            node_stops.entry(node.0).or_default().push(StopId(s as u32));
        }

        // Foot transfers: stops within walking range (crow-flies x detour).
        let stop_tree = KdTree::build(&feed.stop_points());
        let max_walk_m = cfg.transfer_walk_secs * cfg.omega_mps / cfg.walk_detour;
        let mut transfers: Vec<Vec<Transfer>> = vec![Vec::new(); n_stops];
        for (s, out) in transfers.iter_mut().enumerate() {
            let pos = feed.stop_pos(StopId(s as u32));
            for nb in stop_tree.within_radius(&pos, max_walk_m) {
                if nb.item == s as u32 {
                    continue;
                }
                let secs = (nb.dist() * cfg.walk_detour / cfg.omega_mps).round() as u32;
                out.push(Transfer { to: StopId(nb.item), walk_secs: secs });
            }
        }

        TransitNetwork {
            road,
            feed,
            cfg,
            patterns,
            patterns_at_stop,
            stop_node,
            node_stops,
            transfers,
            snapper,
        }
    }

    /// With default configuration.
    pub fn with_defaults(road: &'a RoadGraph, feed: &'a FeedIndex) -> Self {
        Self::new(road, feed, RouterConfig::default())
    }

    /// All trip patterns.
    #[inline]
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Patterns serving `stop` with the position of `stop` in each.
    #[inline]
    pub fn patterns_at(&self, stop: StopId) -> &[(u32, u32)] {
        &self.patterns_at_stop[stop.idx()]
    }

    /// Foot transfers out of `stop`.
    #[inline]
    pub fn transfers_from(&self, stop: StopId) -> &[Transfer] {
        &self.transfers[stop.idx()]
    }

    /// Road node `stop` snaps to.
    #[inline]
    pub fn stop_node(&self, stop: StopId) -> NodeId {
        self.stop_node[stop.idx()]
    }

    /// Stops reachable on foot from `point` within the access budget, as
    /// `(stop, walk seconds)`. Walks the road graph (bounded Dijkstra), not
    /// crow-flies, so severed streets are respected.
    pub fn access_stops(&self, point: &Point) -> Vec<(StopId, u32)> {
        let mut out = Vec::new();
        self.access_stops_into(point, &mut dijkstra::WalkScratch::new(), &mut Vec::new(), &mut out);
        out
    }

    /// [`access_stops`](Self::access_stops) against caller-owned scratch and
    /// buffers — the query hot path runs two of these per SPQ, and the
    /// Dijkstra distance table alone spans the whole road graph.
    pub fn access_stops_into(
        &self,
        point: &Point,
        walk: &mut dijkstra::WalkScratch,
        nodes: &mut Vec<(NodeId, f64)>,
        out: &mut Vec<(StopId, u32)>,
    ) {
        out.clear();
        let Some((root, gap_m)) = self.snapper.snap(point) else {
            return;
        };
        let entry = gap_m / self.cfg.omega_mps;
        let remaining = self.cfg.access_budget_secs - entry;
        if remaining < 0.0 {
            return;
        }
        dijkstra::bounded_walk_times_into(self.road, root, remaining, walk, nodes);
        for &(node, t) in nodes.iter() {
            if let Some(stops) = self.node_stops.get(&node.0) {
                for &s in stops {
                    out.push((s, (entry + t).round() as u32));
                }
            }
        }
    }

    /// [`access_stops_into`](Self::access_stops_into) through a memo: the
    /// cached stop list for `point` when present, the freshly computed (and
    /// now cached) one otherwise. Returns an arena range; resolve it with
    /// [`AccessCache::slice`].
    pub fn access_stops_cached(
        &self,
        point: &Point,
        cache: &mut AccessCache,
        walk: &mut dijkstra::WalkScratch,
        nodes: &mut Vec<(NodeId, f64)>,
        tmp: &mut Vec<(StopId, u32)>,
    ) -> AccessRange {
        if let Some(range) = cache.get(point) {
            ACCESS_CACHE_HIT.inc();
            return range;
        }
        ACCESS_CACHE_MISS.inc();
        // Only the miss path gets a span: a hit is a hash probe and would
        // drown the ring in sub-microsecond records.
        let _span = staq_obs::trace::span("network.access_isochrone");
        self.access_stops_into(point, walk, nodes, tmp);
        cache.insert(point, tmp)
    }

    /// Direct walking time from `o` to `d` in seconds: the walk-only
    /// fallback, always finite (crow-flies × detour at ω). City-scale direct
    /// walks are rarely competitive; when they are (nearby POIs) the
    /// approximation error is a few percent of a short walk.
    pub fn direct_walk_secs(&self, o: &Point, d: &Point) -> u32 {
        (o.dist(d) * self.cfg.walk_detour / self.cfg.omega_mps).round() as u32
    }

    /// Total number of patterns (diagnostics).
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Structural summary for logs and reports.
    pub fn stats(&self) -> NetworkStats {
        let n_trips: usize = self.patterns.iter().map(|p| p.trips.len()).sum();
        let n_transfers: usize = self.transfers.iter().map(Vec::len).sum();
        NetworkStats {
            n_stops: self.feed.n_stops(),
            n_patterns: self.patterns.len(),
            n_trips,
            n_transfers,
            mean_pattern_length: if self.patterns.is_empty() {
                0.0
            } else {
                self.patterns.iter().map(|p| p.stops.len()).sum::<usize>() as f64
                    / self.patterns.len() as f64
            },
        }
    }
}

/// An entry handle into an [`AccessCache`] arena: `(start, len)`.
pub type AccessRange = (u32, u32);

/// Memo of access/egress stop isochrones, keyed by quantized query point.
///
/// Labeling routes every trip of a zone from the *same* origin centroid to
/// one of a handful of POI destinations, so the bounded road-graph Dijkstra
/// behind [`TransitNetwork::access_stops_into`] recomputes identical
/// isochrones thousands of times per pass. The memo collapses those to one
/// computation each: keys are points snapped to a millimeter grid (an
/// identity in practice — distinct zone centroids, POIs, and request points
/// sit meters apart), and results live in a single arena so hits are
/// allocation-free.
///
/// The cache is per-router (routers are per-worker), so no synchronization
/// is needed. Eviction is wholesale: [`begin_query`](Self::begin_query)
/// clears everything when the *next* query's two inserts could exceed the
/// entry budget, which also guarantees ranges handed out within one query
/// are never invalidated mid-query.
pub struct AccessCache {
    map: HashMap<(i64, i64), AccessRange>,
    arena: Vec<(StopId, u32)>,
    max_entries: usize,
}

impl Default for AccessCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessCache {
    /// Default entry budget: generous for a labeling pass (zones + POIs),
    /// small next to the router's own scratch.
    const DEFAULT_MAX_ENTRIES: usize = 4096;

    /// An empty cache with the default entry budget.
    pub fn new() -> Self {
        Self::with_max_entries(Self::DEFAULT_MAX_ENTRIES)
    }

    /// An empty cache holding at most `max_entries` memoized isochrones.
    pub fn with_max_entries(max_entries: usize) -> Self {
        AccessCache { map: HashMap::new(), arena: Vec::new(), max_entries: max_entries.max(2) }
    }

    /// Millimeter-grid key: exact for any two points that aren't within
    /// 1 mm of a shared grid line, i.e. all real origins/destinations.
    fn key(point: &Point) -> (i64, i64) {
        ((point.x * 1000.0).round() as i64, (point.y * 1000.0).round() as i64)
    }

    /// Call once per query, before its lookups: wholesale-evicts when the
    /// query's (up to two) inserts could overflow the budget, so ranges
    /// returned within a single query always stay valid.
    pub fn begin_query(&mut self) {
        if self.map.len() + 2 > self.max_entries {
            self.map.clear();
            self.arena.clear();
        }
    }

    /// Cached range for `point`, if present.
    fn get(&self, point: &Point) -> Option<AccessRange> {
        self.map.get(&Self::key(point)).copied()
    }

    /// Memoizes `stops` as the isochrone of `point`.
    fn insert(&mut self, point: &Point, stops: &[(StopId, u32)]) -> AccessRange {
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(stops);
        let range = (start, stops.len() as u32);
        self.map.insert(Self::key(point), range);
        range
    }

    /// Resolves a range returned by [`TransitNetwork::access_stops_cached`].
    pub fn slice(&self, (start, len): AccessRange) -> &[(StopId, u32)] {
        &self.arena[start as usize..(start + len) as usize]
    }

    /// Number of memoized isochrones.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Summary counts of a prepared network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    pub n_stops: usize,
    pub n_patterns: usize,
    pub n_trips: usize,
    pub n_transfers: usize,
    pub mean_pattern_length: f64,
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stops, {} patterns ({} trips, mean length {:.1}), {} foot transfers",
            self.n_stops, self.n_patterns, self.n_trips, self.mean_pattern_length, self.n_transfers
        )
    }
}

/// Groups trips into patterns by (route, exact stop sequence).
fn build_patterns(feed: &FeedIndex) -> Vec<Pattern> {
    let mut keyed: HashMap<(RouteId, Vec<StopId>), Vec<TripId>> = HashMap::new();
    for trip in &feed.feed().trips {
        let calls = feed.trip_calls(trip.id);
        if calls.len() < 2 {
            continue;
        }
        let stops: Vec<StopId> = calls.iter().map(|c| c.stop).collect();
        keyed.entry((trip.route, stops)).or_default().push(trip.id);
    }
    let mut keys: Vec<(RouteId, Vec<StopId>)> = keyed.keys().cloned().collect();
    keys.sort(); // deterministic pattern order
    let mut patterns = Vec::with_capacity(keys.len());
    for key in keys {
        let mut trips = keyed.remove(&key).unwrap();
        trips.sort_by_key(|&t| feed.trip_calls(t)[0].departure);
        let (route, stops) = key;
        let mut arrivals = Vec::with_capacity(trips.len() * stops.len());
        let mut departures = Vec::with_capacity(trips.len() * stops.len());
        let mut service_days = 0u8;
        for &t in &trips {
            for c in feed.trip_calls(t) {
                arrivals.push(c.arrival);
                departures.push(c.departure);
            }
            for day in DayOfWeek::ALL {
                if feed.trip_runs_on(t, day) {
                    service_days |= 1u8 << day.index();
                }
            }
        }
        patterns.push(Pattern { route, stops, trips, arrivals, departures, service_days });
    }
    patterns
}

/// Panics when a later-departing trip arrives earlier at any stop.
fn check_no_overtaking(p: &Pattern) {
    let ns = p.stops.len();
    for t in 1..p.trips.len() {
        for i in 0..ns {
            assert!(
                p.arrival(t, i) >= p.arrival(t - 1, i),
                "pattern on route {:?} has overtaking trips at stop position {i}",
                p.route
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::{City, CityConfig};

    fn city() -> City {
        City::generate(&CityConfig::small(42))
    }

    #[test]
    fn patterns_cover_all_multi_call_trips() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let total_trips: usize = net.patterns().iter().map(|p| p.trips.len()).sum();
        assert_eq!(total_trips, city.feed.feed().trips.len());
        for p in net.patterns() {
            assert!(p.stops.len() >= 2);
            assert!(!p.trips.is_empty());
        }
    }

    #[test]
    fn pattern_timetable_matches_feed() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let p = &net.patterns()[0];
        let calls = city.feed.trip_calls(p.trips[0]);
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(p.arrival(0, i), c.arrival);
            assert_eq!(p.departure(0, i), c.departure);
        }
    }

    #[test]
    fn earliest_trip_binary_search_agrees_with_scan() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let day = DayOfWeek::Tuesday;
        for p in net.patterns().iter().take(5) {
            for &probe in &[Stime::hours(6), Stime::hms(7, 43, 0), Stime::hours(22)] {
                for i in [0usize, p.stops.len() / 2] {
                    let got = p.earliest_trip(i, probe, day, &city.feed);
                    let want = (0..p.trips.len()).find(|&k| {
                        p.departure(k, i) >= probe && city.feed.trip_runs_on(p.trips[k], day)
                    });
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn access_stops_respects_budget() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let origin = city.cores[0];
        let stops = net.access_stops(&origin);
        assert!(!stops.is_empty(), "city center must reach some stop on foot");
        for &(s, secs) in &stops {
            assert!(secs as f64 <= net.cfg.access_budget_secs + 1.0);
            // The stop really is near the walking range.
            let crow = city.feed.stop_pos(s).dist(&origin);
            assert!(crow <= net.cfg.access_budget_secs * net.cfg.omega_mps * 1.05);
        }
    }

    #[test]
    fn transfers_are_symmetricish_and_bounded() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        for s in 0..city.feed.n_stops() {
            for tr in net.transfers_from(StopId(s as u32)) {
                assert!(tr.walk_secs as f64 <= net.cfg.transfer_walk_secs + 1.0);
                assert_ne!(tr.to, StopId(s as u32));
                // Reverse transfer exists (same radius, symmetric metric).
                assert!(net.transfers_from(tr.to).iter().any(|r| r.to == StopId(s as u32)));
            }
        }
    }

    #[test]
    fn stats_summarize_the_network() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let s = net.stats();
        assert_eq!(s.n_stops, city.feed.n_stops());
        assert_eq!(s.n_trips, city.feed.feed().trips.len());
        assert!(s.mean_pattern_length >= 2.0);
        assert!(s.to_string().contains("patterns"));
    }

    #[test]
    fn access_cache_returns_identical_stop_lists() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let mut cache = AccessCache::new();
        let mut walk = dijkstra::WalkScratch::new();
        let (mut nodes, mut tmp) = (Vec::new(), Vec::new());
        for p in [city.cores[0], city.zones[3].centroid, city.zones[7].centroid] {
            cache.begin_query();
            let miss = net.access_stops_cached(&p, &mut cache, &mut walk, &mut nodes, &mut tmp);
            let first: Vec<_> = cache.slice(miss).to_vec();
            let hit = net.access_stops_cached(&p, &mut cache, &mut walk, &mut nodes, &mut tmp);
            assert_eq!(cache.slice(hit), &first[..]);
            assert_eq!(first, net.access_stops(&p), "cached list diverged from direct compute");
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn access_cache_evicts_wholesale_at_budget() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let mut cache = AccessCache::with_max_entries(4);
        let mut walk = dijkstra::WalkScratch::new();
        let (mut nodes, mut tmp) = (Vec::new(), Vec::new());
        for z in 0..6 {
            cache.begin_query();
            let p = city.zones[z].centroid;
            let r = net.access_stops_cached(&p, &mut cache, &mut walk, &mut nodes, &mut tmp);
            assert_eq!(cache.slice(r), &net.access_stops(&p)[..]);
            assert!(cache.len() <= 4);
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn direct_walk_scales_with_distance() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let a = Point::new(0.0, 0.0);
        let near = net.direct_walk_secs(&a, &Point::new(100.0, 0.0));
        let far = net.direct_walk_secs(&a, &Point::new(1000.0, 0.0));
        assert!(far > near * 9);
        assert_eq!(net.direct_walk_secs(&a, &a), 0);
    }
}

//! staq-trace: fetch a trace dump from a server or router and render
//! per-query span trees.
//!
//! ```text
//! staq-trace [--addr 127.0.0.1:7900] [--min-dur-us N] [--set-capture-us N]
//!            [--limit N]
//! ```
//!
//! Issues a `TraceDump` request (routers fan it out across the fleet and
//! concatenate), stitches the returned spans into trees by
//! `(trace, parent)` links, and prints one tree per trace — newest first
//! — with each span's total time and self time (total minus the children
//! that ran under it).
//!
//! `--min-dur-us` filters the dump server-side; `--set-capture-us`
//! retunes the server's capture threshold for *future* spans, which is
//! how an operator keeps sub-microsecond spans from flooding the ring
//! before taking a dump worth reading.

use staq_obs::{fmt_dur, OwnedSpan};
use staq_serve::Client;
use std::collections::HashMap;
use std::time::Duration;

struct Args {
    addr: String,
    min_dur_us: u64,
    set_capture_us: Option<u64>,
    limit: usize,
}

fn parse_args() -> Args {
    let mut args =
        Args { addr: "127.0.0.1:7900".into(), min_dur_us: 0, set_capture_us: None, limit: 20 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--min-dur-us" => args.min_dur_us = parse(&mut it, "--min-dur-us"),
            "--set-capture-us" => args.set_capture_us = Some(parse(&mut it, "--set-capture-us")),
            "--limit" => args.limit = parse(&mut it, "--limit"),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: staq-trace [--addr host:port] [--min-dur-us N] [--set-capture-us N] [--limit N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let spans = client
        .trace_dump(args.min_dur_us * 1_000, args.set_capture_us.map(|us| us * 1_000))
        .unwrap_or_else(|e| {
            eprintln!("error: trace dump failed: {e}");
            std::process::exit(1);
        });
    if let Some(us) = args.set_capture_us {
        eprintln!("capture threshold set to {us}us");
    }
    if spans.is_empty() {
        println!("no spans (ring empty, filtered out, or server built with obs-off)");
        return;
    }
    print_traces(&spans, args.limit);
}

/// Groups spans by trace, newest trace first, and prints each as a tree.
fn print_traces(spans: &[OwnedSpan], limit: usize) {
    let mut by_trace: HashMap<u64, Vec<&OwnedSpan>> = HashMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut traces: Vec<(u64, Vec<&OwnedSpan>)> = by_trace.into_iter().collect();
    // Newest activity first: a dump is usually taken to look at what just
    // happened.
    traces.sort_by_key(|(_, ss)| std::cmp::Reverse(ss.iter().map(|s| s.start_unix_ns).max()));
    let total = traces.len();
    for (trace, mut ss) in traces.into_iter().take(limit) {
        ss.sort_by_key(|s| (s.start_unix_ns, s.span));
        let start = ss.iter().map(|s| s.start_unix_ns).min().unwrap_or(0);
        let end = ss.iter().map(|s| s.start_unix_ns + s.dur_ns).max().unwrap_or(0);
        println!(
            "trace {trace:016x}  {} span(s), {} end to end",
            ss.len(),
            fmt_dur(Duration::from_nanos(end.saturating_sub(start)))
        );
        // Parent → children index; roots are spans whose parent is absent
        // from the dump (evicted, below threshold, or on another host).
        let ids: HashMap<u64, ()> = ss.iter().map(|s| (s.span, ())).collect();
        let mut children: HashMap<u64, Vec<&OwnedSpan>> = HashMap::new();
        let mut roots: Vec<&OwnedSpan> = Vec::new();
        for s in &ss {
            if s.parent != 0 && ids.contains_key(&s.parent) && s.parent != s.span {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        for root in roots {
            print_tree(root, &children, 1, ss.len());
        }
    }
    if total > limit {
        println!("... {} more trace(s); raise --limit to see them", total - limit);
    }
}

fn print_tree(s: &OwnedSpan, children: &HashMap<u64, Vec<&OwnedSpan>>, depth: usize, cap: usize) {
    // Depth is bounded by the span count, so corrupt parent links cannot
    // recurse forever.
    if depth > cap {
        return;
    }
    let kids = children.get(&s.span).map(Vec::as_slice).unwrap_or(&[]);
    let child_ns: u64 = kids.iter().map(|k| k.dur_ns).sum();
    let self_ns = s.dur_ns.saturating_sub(child_ns);
    let mut line = format!(
        "{}{}  total={} self={}",
        "  ".repeat(depth),
        s.name,
        fmt_dur(Duration::from_nanos(s.dur_ns)),
        fmt_dur(Duration::from_nanos(self_ns)),
    );
    for (k, v) in &s.attrs {
        line.push_str(&format!(" {k}={v}"));
    }
    println!("{line}");
    for k in kids {
        print_tree(k, children, depth + 1, cap);
    }
}

//! Start-time sampling (paper §III-C).
//!
//! `R` is a global set of random start times drawn from the interval `v` at
//! a per-hour rate. For each `(z_i, p_j)` pair with `α_ij > 0`, a subset
//! `r^{i,j} ⊆ R` is sampled — each element kept independently with
//! probability `min(1, γ·α_ij)`, so expected trip counts are proportional
//! to attractiveness ("r^{i,j} is proportional to α_ij and is governed by a
//! probability function").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use staq_gtfs::time::{Stime, TimeInterval};

/// Draws the global start-time set `R`: `per_hour` uniform samples per hour
/// of `v`, sorted ascending. A degenerate interval (`start == end`) spans
/// zero hours, so it yields the empty set — sampling `start.0..end.0`
/// unconditionally used to panic on the empty range.
pub fn draw_start_times(v: &TimeInterval, per_hour: u32, seed: u64) -> Vec<Stime> {
    if v.start.0 >= v.end.0 {
        return Vec::new();
    }
    let n = ((v.duration_hours() * per_hour as f64).round() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_7135);
    let mut times: Vec<Stime> =
        (0..n).map(|_| Stime(rng.random_range(v.start.0..v.end.0))).collect();
    times.sort_unstable();
    times
}

/// Keep-probability for one `(z_i, p_j)` pair: `min(1, gamma * alpha)`.
/// `gamma` is the trip-budget multiplier — larger values sample more of `R`
/// per unit attractiveness.
#[inline]
pub fn keep_probability(alpha: f64, gamma: f64) -> f64 {
    (gamma * alpha).clamp(0.0, 1.0)
}

/// Thins `R` for one pair: binomial selection at [`keep_probability`],
/// deterministic in `(seed, zone, poi)` so construction order (and
/// parallelism) never changes the matrix.
pub fn thin_for_pair(
    times: &[Stime],
    alpha: f64,
    gamma: f64,
    seed: u64,
    zone: u32,
    poi: u32,
) -> Vec<Stime> {
    let p = keep_probability(alpha, gamma);
    if p <= 0.0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return times.to_vec();
    }
    // Pair-specific stream: SplitMix-style mix of (seed, zone, poi).
    let mix = seed
        .wrapping_add((zone as u64).wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add((poi as u64).wrapping_mul(0xBF58476D1CE4E5B9));
    let mut rng = StdRng::seed_from_u64(mix);
    times.iter().copied().filter(|_| rng.random_range(0.0..1.0) < p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn am() -> TimeInterval {
        TimeInterval::am_peak()
    }

    #[test]
    fn draws_rate_times_hours_samples() {
        let r = draw_start_times(&am(), 5, 1);
        assert_eq!(r.len(), 10, "5/hr over a 2h window");
        assert!(r.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.iter().all(|&t| am().contains(t)));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(draw_start_times(&am(), 7, 9), draw_start_times(&am(), 7, 9));
        assert_ne!(draw_start_times(&am(), 7, 9), draw_start_times(&am(), 7, 10));
    }

    #[test]
    fn degenerate_interval_draws_nothing() {
        let t = Stime::hms(8, 0, 0);
        let point = TimeInterval { start: t, end: t, ..am() };
        assert!(draw_start_times(&point, 5, 1).is_empty());
    }

    #[test]
    fn keep_probability_clamps() {
        assert_eq!(keep_probability(0.0, 15.0), 0.0);
        assert_eq!(keep_probability(0.5, 15.0), 1.0);
        assert!((keep_probability(0.01, 15.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn thinning_is_proportional() {
        let times = draw_start_times(&am(), 300, 2); // 600 samples
        let small = thin_for_pair(&times, 0.005, 15.0, 1, 0, 0); // p = 0.075
        let large = thin_for_pair(&times, 0.04, 15.0, 1, 0, 1); // p = 0.6
        let ps = small.len() as f64 / times.len() as f64;
        let pl = large.len() as f64 / times.len() as f64;
        assert!((ps - 0.075).abs() < 0.04, "observed {ps}");
        assert!((pl - 0.6).abs() < 0.08, "observed {pl}");
    }

    #[test]
    fn zero_alpha_yields_no_trips() {
        let times = draw_start_times(&am(), 5, 3);
        assert!(thin_for_pair(&times, 0.0, 15.0, 1, 2, 3).is_empty());
    }

    #[test]
    fn saturated_alpha_keeps_everything() {
        let times = draw_start_times(&am(), 5, 3);
        assert_eq!(thin_for_pair(&times, 0.5, 15.0, 1, 2, 3), times);
    }

    #[test]
    fn pair_streams_are_independent_and_reproducible() {
        let times = draw_start_times(&am(), 50, 4);
        let a1 = thin_for_pair(&times, 0.02, 15.0, 9, 5, 7);
        let a2 = thin_for_pair(&times, 0.02, 15.0, 9, 5, 7);
        let b = thin_for_pair(&times, 0.02, 15.0, 9, 5, 8);
        assert_eq!(a1, a2);
        assert_ne!(a1, b, "different pairs draw different subsets");
    }
}

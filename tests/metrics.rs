//! The observability contract over the wire: a warm query burst against a
//! real loopback server must come back countable through the `Stats`
//! frame's embedded metrics snapshot — per-kind server-side latency
//! histograms, engine cache counters, and the pipeline stage timers the
//! cold run left behind.
//!
//! Obs statics are process-global, so everything here asserts lower
//! bounds from a single test body instead of exact counts.

use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ServerConfig};

#[test]
fn stats_frame_carries_server_side_latency_histograms() {
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, queue_depth: 64 },
    )
    .expect("bind loopback server");
    let mut c = Client::connect(server.addr()).expect("connect");

    // One cold touch (runs the SSR pipeline), then a warm burst.
    c.measures(PoiCategory::School).expect("cold measures");
    const BURST: u64 = 50;
    for _ in 0..BURST {
        c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("warm query");
        c.query(&AccessQuery::WorstZones { k: 5 }, PoiCategory::School).expect("warm query");
    }

    let stats = c.stats().expect("stats");
    let m = &stats.metrics;

    // Per-kind server-side latency histograms are non-zero and ordered.
    let q = m.histogram("serve.request.query").expect("query latency histogram");
    assert!(q.count >= 2 * BURST, "burst must be visible server-side, got {}", q.count);
    assert!(q.p50_ns > 0, "recorded latencies are nonzero");
    assert!(q.p50_ns <= q.p95_ns && q.p95_ns <= q.p99_ns, "quantiles must be ordered");
    assert!(q.max_ns >= q.p99_ns);
    assert!(!q.buckets.is_empty(), "sparse buckets ship with the frame");
    let meas = m.histogram("serve.request.measures").expect("measures latency histogram");
    assert!(meas.count >= 1);

    // The registry's request counter covers at least what the pool
    // reported served (both all-kind, registry may lead by in-flight).
    assert!(m.counter("serve.requests").unwrap_or(0) >= stats.requests_served);

    // Engine cache counters: one miss (the cold touch), many hits.
    assert!(m.counter("engine.cache.misses").unwrap_or(0) >= 1);
    assert!(m.counter("engine.cache.hits").unwrap_or(0) >= 2 * BURST);

    // The cold pipeline run left stage timings and router/labeling
    // counters behind.
    for stage in ["artifacts", "features", "sampling", "labeling", "train"] {
        let h = m
            .histogram(&format!("pipeline.stage.{stage}"))
            .unwrap_or_else(|| panic!("missing pipeline.stage.{stage}"));
        assert!(h.count >= 1, "stage {stage} must have run");
    }
    assert!(m.counter("raptor.queries").unwrap_or(0) > 0);
    assert!(m.counter("label.zones").unwrap_or(0) > 0);

    // The snapshot survives its JSON interchange form intact.
    let reparsed =
        staq_obs::MetricsSnapshot::from_json(&m.to_json()).expect("snapshot JSON parses back");
    assert_eq!(&reparsed, m);

    server.shutdown();
}

//! Router-side staq-obs metrics.
//!
//! The obs registry is statics-only (no dynamic metric names), so the
//! per-backend latency histograms are a fixed bank of eight; fleets larger
//! than eight shards fold the tail into `shard.backend.7plus.latency`.
//! Everything here rides the normal [`staq_obs::snapshot`] path, so the
//! router's own numbers appear in the merged `Stats` reply next to the
//! backends'.

use staq_obs::{AtomicHistogram, Counter};

/// Requests routed, by request kind (mirrors `Request::kind_label`).
static ROUTE_MEASURES: Counter = Counter::new("shard.route.measures");
static ROUTE_QUERY: Counter = Counter::new("shard.route.query");
static ROUTE_ADD_POI: Counter = Counter::new("shard.route.add_poi");
static ROUTE_ADD_BUS_ROUTE: Counter = Counter::new("shard.route.add_bus_route");
static ROUTE_STATS: Counter = Counter::new("shard.route.stats");
static ROUTE_TRACE_DUMP: Counter = Counter::new("shard.route.trace_dump");

/// Mid-call failures retried on a fresh connection (idempotent reads only).
pub(crate) static RETRIES: Counter = Counter::new("shard.backend.retries");
/// Up→down transitions: a backend was marked unavailable.
pub(crate) static FAILOVERS: Counter = Counter::new("shard.backend.failovers");
/// Down→up transitions driven by the supervisor restarting a backend.
pub(crate) static RESPAWNS: Counter = Counter::new("shard.backend.respawns");

/// Bumps the route counter for one request kind.
pub(crate) fn route_counter(kind: &'static str) -> &'static Counter {
    match kind {
        "measures" => &ROUTE_MEASURES,
        "query" => &ROUTE_QUERY,
        "add_poi" => &ROUTE_ADD_POI,
        "add_bus_route" => &ROUTE_ADD_BUS_ROUTE,
        "trace_dump" => &ROUTE_TRACE_DUMP,
        _ => &ROUTE_STATS,
    }
}

static B0: AtomicHistogram = AtomicHistogram::new("shard.backend.0.latency");
static B1: AtomicHistogram = AtomicHistogram::new("shard.backend.1.latency");
static B2: AtomicHistogram = AtomicHistogram::new("shard.backend.2.latency");
static B3: AtomicHistogram = AtomicHistogram::new("shard.backend.3.latency");
static B4: AtomicHistogram = AtomicHistogram::new("shard.backend.4.latency");
static B5: AtomicHistogram = AtomicHistogram::new("shard.backend.5.latency");
static B6: AtomicHistogram = AtomicHistogram::new("shard.backend.6.latency");
static B7: AtomicHistogram = AtomicHistogram::new("shard.backend.7plus.latency");

/// Round-trip latency histogram for one backend (request sent → response
/// decoded, as the router measured it).
pub(crate) fn backend_latency(shard: usize) -> &'static AtomicHistogram {
    const BANK: [&AtomicHistogram; 8] = [&B0, &B1, &B2, &B3, &B4, &B5, &B6, &B7];
    BANK[shard.min(BANK.len() - 1)]
}

//! staq-serve round trip: start an in-process server on loopback, talk to
//! it with the client library, edit the scenario over the wire, and watch
//! the single-flight cache through the Stats frame.
//!
//! The same protocol serves out-of-process deployments:
//!
//! ```bash
//! cargo run --release -p staq-serve --bin serve -- --city test --workers 4
//! cargo run --release -p staq-serve --bin staq-serve-bench -- --conns 16
//! ```

use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ServerConfig};

fn main() {
    // A server over the scaled test city, 4 worker threads, ephemeral port.
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    println!("serving on {}", server.addr());

    let mut c = Client::connect(server.addr()).expect("connect");

    // Cold query: this runs the SSR pipeline once, no matter how many
    // clients ask concurrently (see tests/serve_integration.rs for the
    // 64-connection version of this claim).
    match c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("query") {
        QueryAnswer::MeanAccess { mean_mac, n_zones, .. } => {
            println!("mean access to school: {mean_mac:.1} min over {n_zones} zones")
        }
        other => println!("unexpected: {other:?}"),
    }
    let stats = c.stats().expect("stats");
    println!("after cold query: pipeline_runs={} cached={:?}", stats.pipeline_runs, stats.cached);

    // Warm query: answered from the cached measures, no recompute.
    c.query(&AccessQuery::WorstZones { k: 3 }, PoiCategory::School).expect("warm");
    let stats = c.stats().expect("stats");
    println!("after warm query: pipeline_runs={}", stats.pipeline_runs);

    // A scenario edit over the wire invalidates exactly its own category…
    let side = 0.05 * 11_000.0; // inside the scaled test city
    c.add_poi(PoiCategory::School, staq_repro::geom::Point::new(side, side)).expect("add_poi");
    let stats = c.stats().expect("stats");
    println!("after add_poi: cached={:?}", stats.cached);

    // …so the next query recomputes once.
    c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("recompute");
    let stats = c.stats().expect("stats");
    println!(
        "after re-query: pipeline_runs={} requests_served={}",
        stats.pipeline_runs, stats.requests_served
    );

    drop(c);
    server.shutdown();
    println!("server shut down cleanly");
}

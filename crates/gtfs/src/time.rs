//! Service time, days of week, and the paper's time intervals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since midnight of the service day.
///
/// GTFS allows times past 24:00:00 for trips that run over midnight, so the
/// inner value may exceed 86 400. Arithmetic saturates rather than wraps —
/// a clamped journey time is a benign error, an overflowed one is not.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Stime(pub u32);

impl Stime {
    /// Seconds in a standard day.
    pub const DAY: u32 = 86_400;

    /// From hours/minutes/seconds. Hours may exceed 23 per GTFS.
    pub const fn hms(h: u32, m: u32, s: u32) -> Self {
        Stime(h * 3600 + m * 60 + s)
    }

    /// From whole hours.
    pub const fn hours(h: u32) -> Self {
        Stime(h * 3600)
    }

    /// Total seconds since midnight.
    #[inline]
    pub const fn secs(self) -> u32 {
        self.0
    }

    /// Fractional minutes since midnight.
    #[inline]
    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// `self + dur` seconds, saturating.
    #[inline]
    pub fn plus(self, dur: u32) -> Stime {
        Stime(self.0.saturating_add(dur))
    }

    /// `self - dur` seconds, saturating at midnight.
    #[inline]
    pub fn minus(self, dur: u32) -> Stime {
        Stime(self.0.saturating_sub(dur))
    }

    /// Seconds from `self` to `later`; 0 when `later` precedes `self`.
    #[inline]
    pub fn until(self, later: Stime) -> u32 {
        later.0.saturating_sub(self.0)
    }

    /// Parses `HH:MM:SS` (hours may be ≥ 24, e.g. `25:10:00`).
    pub fn parse(s: &str) -> Result<Stime, String> {
        let mut it = s.split(':');
        let (h, m, sec) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(h), Some(m), Some(sec), None) => (h, m, sec),
            _ => return Err(format!("bad time {s:?}: expected HH:MM:SS")),
        };
        let h: u32 = h.trim().parse().map_err(|_| format!("bad hours in {s:?}"))?;
        let m: u32 = m.trim().parse().map_err(|_| format!("bad minutes in {s:?}"))?;
        let sec: u32 = sec.trim().parse().map_err(|_| format!("bad seconds in {s:?}"))?;
        if m > 59 || sec > 59 {
            return Err(format!("minutes/seconds out of range in {s:?}"));
        }
        Ok(Stime::hms(h, m, sec))
    }
}

impl fmt::Display for Stime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.0 / 3600, (self.0 / 60) % 60, self.0 % 60)
    }
}

/// Day of the week a service runs (GTFS `calendar.txt` columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All seven days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Index 0..=6, Monday = 0.
    pub const fn index(self) -> usize {
        match self {
            DayOfWeek::Monday => 0,
            DayOfWeek::Tuesday => 1,
            DayOfWeek::Wednesday => 2,
            DayOfWeek::Thursday => 3,
            DayOfWeek::Friday => 4,
            DayOfWeek::Saturday => 5,
            DayOfWeek::Sunday => 6,
        }
    }

    /// True Monday–Friday.
    pub const fn is_weekday(self) -> bool {
        (self.index()) < 5
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DayOfWeek::Monday => "Monday",
            DayOfWeek::Tuesday => "Tuesday",
            DayOfWeek::Wednesday => "Wednesday",
            DayOfWeek::Thursday => "Thursday",
            DayOfWeek::Friday => "Friday",
            DayOfWeek::Saturday => "Saturday",
            DayOfWeek::Sunday => "Sunday",
        };
        f.write_str(s)
    }
}

/// The paper's time interval `v = [t_s, t_e, t_d]` (§III-A): a labeled
/// window on a given day for which accessibility is assessed, e.g.
/// `[7am, 9am, Tuesday]` — the weekday AM peak.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Window start `t_s`.
    pub start: Stime,
    /// Window end `t_e` (exclusive).
    pub end: Stime,
    /// Day of week `t_d`.
    pub day: DayOfWeek,
    /// Human label, e.g. `"AM peak"`.
    pub label: String,
}

impl TimeInterval {
    /// Creates a labeled interval. Panics when `end <= start`; a zero-length
    /// interval can never contain a trip start time and always indicates a
    /// configuration bug.
    pub fn new(start: Stime, end: Stime, day: DayOfWeek, label: impl Into<String>) -> Self {
        assert!(end > start, "interval end must be after start");
        TimeInterval { start, end, day, label: label.into() }
    }

    /// The evaluation interval used throughout the paper: weekday AM peak,
    /// 07:00–09:00 on Tuesday.
    pub fn am_peak() -> Self {
        TimeInterval::new(Stime::hours(7), Stime::hours(9), DayOfWeek::Tuesday, "AM peak")
    }

    /// PM peak 16:30–18:30 on Tuesday (used for multi-interval examples).
    pub fn pm_peak() -> Self {
        TimeInterval::new(
            Stime::hms(16, 30, 0),
            Stime::hms(18, 30, 0),
            DayOfWeek::Tuesday,
            "PM peak",
        )
    }

    /// Inter-peak 11:00–13:00 on Tuesday.
    pub fn midday() -> Self {
        TimeInterval::new(Stime::hours(11), Stime::hours(13), DayOfWeek::Tuesday, "midday")
    }

    /// True when `t` falls in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Stime) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in seconds.
    #[inline]
    pub fn duration_secs(&self) -> u32 {
        self.end.0 - self.start.0
    }

    /// Window length in fractional hours.
    #[inline]
    pub fn duration_hours(&self) -> f64 {
        self.duration_secs() as f64 / 3600.0
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}–{} {}]", self.label, self.start, self.end, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_and_secs() {
        assert_eq!(Stime::hms(7, 30, 15).secs(), 7 * 3600 + 30 * 60 + 15);
        assert_eq!(Stime::hours(24).secs(), Stime::DAY);
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["00:00:00", "07:05:09", "23:59:59", "25:10:00"] {
            let t = Stime::parse(s).unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Stime::parse("7:5").is_err());
        assert!(Stime::parse("aa:bb:cc").is_err());
        assert!(Stime::parse("07:61:00").is_err());
        assert!(Stime::parse("07:00:75").is_err());
        assert!(Stime::parse("07:00:00:00").is_err());
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Stime(10).minus(20), Stime(0));
        assert_eq!(Stime(u32::MAX).plus(10), Stime(u32::MAX));
        assert_eq!(Stime(100).until(Stime(40)), 0);
        assert_eq!(Stime(40).until(Stime(100)), 60);
    }

    #[test]
    fn over_midnight_times_are_legal() {
        let t = Stime::parse("26:15:00").unwrap();
        assert!(t.secs() > Stime::DAY);
        assert_eq!(t.to_string(), "26:15:00");
    }

    #[test]
    fn day_index_and_weekday() {
        assert_eq!(DayOfWeek::Monday.index(), 0);
        assert_eq!(DayOfWeek::Sunday.index(), 6);
        assert!(DayOfWeek::Friday.is_weekday());
        assert!(!DayOfWeek::Saturday.is_weekday());
        assert_eq!(DayOfWeek::ALL.len(), 7);
    }

    #[test]
    fn interval_contains_half_open() {
        let v = TimeInterval::am_peak();
        assert!(v.contains(Stime::hours(7)));
        assert!(v.contains(Stime::hms(8, 59, 59)));
        assert!(!v.contains(Stime::hours(9)));
        assert!(!v.contains(Stime::hms(6, 59, 59)));
    }

    #[test]
    fn interval_durations() {
        let v = TimeInterval::am_peak();
        assert_eq!(v.duration_secs(), 7200);
        assert!((v.duration_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "end must be after start")]
    fn zero_length_interval_rejected() {
        TimeInterval::new(Stime::hours(7), Stime::hours(7), DayOfWeek::Monday, "bad");
    }

    #[test]
    fn minutes_conversion() {
        assert!((Stime::hms(0, 30, 0).minutes() - 30.0).abs() < 1e-12);
    }
}

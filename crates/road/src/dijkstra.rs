//! Shortest walking times on the road graph.
//!
//! Three variants cover every caller in the system:
//!
//! * [`walk_time`] — one-to-one, early-terminating; access/egress legs.
//! * [`walk_times_from`] — one-to-all; used by the naive baseline and tests.
//! * [`bounded_walk_times`] — budget-bounded one-to-many; the isochrone
//!   primitive (stop search stops expanding past τ seconds).
//!
//! All run textbook Dijkstra over the CSR arrays with a binary heap and
//! lazy deletion; costs are `f64` seconds.

use crate::graph::{NodeId, RoadGraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry inverted into a min-heap on cost.
#[derive(Debug, PartialEq)]
struct HeapItem {
    cost: f64,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest cost first. Costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite costs")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest walking time in seconds from `src` to `dst`, or `None` when
/// unreachable. Terminates as soon as `dst` is settled.
pub fn walk_time(g: &RoadGraph, src: NodeId, dst: NodeId) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    let mut dist = vec![f64::INFINITY; g.n_nodes()];
    let mut heap = BinaryHeap::new();
    dist[src.idx()] = 0.0;
    heap.push(HeapItem { cost: 0.0, node: src.0 });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node as usize] {
            continue; // stale entry
        }
        if node == dst.0 {
            return Some(cost);
        }
        for (t, w) in g.out_edges(NodeId(node)) {
            let nc = cost + w as f64;
            if nc < dist[t.idx()] {
                dist[t.idx()] = nc;
                heap.push(HeapItem { cost: nc, node: t.0 });
            }
        }
    }
    None
}

/// Shortest walking times from `src` to every node; unreachable nodes get
/// `f64::INFINITY`.
pub fn walk_times_from(g: &RoadGraph, src: NodeId) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.n_nodes()];
    let mut heap = BinaryHeap::new();
    dist[src.idx()] = 0.0;
    heap.push(HeapItem { cost: 0.0, node: src.0 });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node as usize] {
            continue;
        }
        for (t, w) in g.out_edges(NodeId(node)) {
            let nc = cost + w as f64;
            if nc < dist[t.idx()] {
                dist[t.idx()] = nc;
                heap.push(HeapItem { cost: nc, node: t.0 });
            }
        }
    }
    dist
}

/// Reusable state for [`bounded_walk_times_into`]: the distance table, the
/// heap, and the list of entries the last run dirtied. Isochrone queries
/// touch a handful of nodes but the distance table spans the whole graph —
/// resetting only the dirtied entries keeps repeated queries allocation-free
/// *and* proportional to the isochrone, not the graph.
#[derive(Default)]
pub struct WalkScratch {
    dist: Vec<f64>,
    touched: Vec<u32>,
    heap: BinaryHeap<HeapItem>,
}

impl WalkScratch {
    /// Empty scratch; sizes itself to the graph on first use.
    pub fn new() -> Self {
        WalkScratch::default()
    }

    /// Distance table ready for `g`: sized on first use (or a graph swap),
    /// sparse-reset from the previous run's touched list otherwise.
    fn reset(&mut self, g: &RoadGraph) {
        if self.dist.len() != g.n_nodes() {
            self.dist.clear();
            self.dist.resize(g.n_nodes(), f64::INFINITY);
        } else {
            for &n in &self.touched {
                self.dist[n as usize] = f64::INFINITY;
            }
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// Nodes reachable from `src` within `budget_secs`, as `(node, time)` pairs
/// in settle order (non-decreasing time). The frontier never expands a node
/// whose settled time exceeds the budget, so the cost is proportional to the
/// isochrone's size, not the graph's.
pub fn bounded_walk_times(g: &RoadGraph, src: NodeId, budget_secs: f64) -> Vec<(NodeId, f64)> {
    let mut out = Vec::new();
    bounded_walk_times_into(g, src, budget_secs, &mut WalkScratch::new(), &mut out);
    out
}

/// [`bounded_walk_times`] against caller-owned scratch and output buffers —
/// the hot-path variant: RAPTOR runs two isochrones per query (origin
/// access, destination egress) and labeling runs millions of queries.
pub fn bounded_walk_times_into(
    g: &RoadGraph,
    src: NodeId,
    budget_secs: f64,
    scratch: &mut WalkScratch,
    out: &mut Vec<(NodeId, f64)>,
) {
    out.clear();
    if budget_secs < 0.0 {
        return;
    }
    scratch.reset(g);
    let WalkScratch { dist, touched, heap } = scratch;
    dist[src.idx()] = 0.0;
    touched.push(src.0);
    heap.push(HeapItem { cost: 0.0, node: src.0 });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node as usize] {
            continue;
        }
        out.push((NodeId(node), cost));
        for (t, w) in g.out_edges(NodeId(node)) {
            let nc = cost + w as f64;
            if nc <= budget_secs && nc < dist[t.idx()] {
                if dist[t.idx()].is_infinite() {
                    touched.push(t.0);
                }
                dist[t.idx()] = nc;
                heap.push(HeapItem { cost: nc, node: t.0 });
            }
        }
    }
}

/// One-to-many: shortest times from `src` to each of `targets`, early-exiting
/// once all targets are settled. `INFINITY` marks unreachable targets.
pub fn walk_times_to_targets(g: &RoadGraph, src: NodeId, targets: &[NodeId]) -> Vec<f64> {
    let mut remaining: std::collections::HashSet<u32> = targets.iter().map(|t| t.0).collect();
    let mut dist = vec![f64::INFINITY; g.n_nodes()];
    let mut heap = BinaryHeap::new();
    dist[src.idx()] = 0.0;
    heap.push(HeapItem { cost: 0.0, node: src.0 });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node as usize] {
            continue;
        }
        if remaining.remove(&node) && remaining.is_empty() {
            break;
        }
        for (t, w) in g.out_edges(NodeId(node)) {
            let nc = cost + w as f64;
            if nc < dist[t.idx()] {
                dist[t.idx()] = nc;
                heap.push(HeapItem { cost: nc, node: t.0 });
            }
        }
    }
    targets.iter().map(|t| dist[t.idx()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;
    use staq_geom::Point;

    /// Line of 5 nodes, 60s per hop, with a slow 500s shortcut 0->4.
    fn line_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<NodeId> =
            (0..5).map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0))).collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], 60.0);
        }
        b.add_edge(ids[0], ids[4], 500.0);
        b.build()
    }

    #[test]
    fn one_to_one_shortest() {
        let g = line_graph();
        assert_eq!(walk_time(&g, NodeId(0), NodeId(4)), Some(240.0));
        assert_eq!(walk_time(&g, NodeId(2), NodeId(2)), Some(0.0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let g = b.build();
        assert_eq!(walk_time(&g, a, c), None);
    }

    #[test]
    fn one_to_all_matches_one_to_one() {
        let g = line_graph();
        let all = walk_times_from(&g, NodeId(0));
        for n in 0..5u32 {
            let one = walk_time(&g, NodeId(0), NodeId(n)).unwrap();
            assert_eq!(all[n as usize], one);
        }
    }

    #[test]
    fn bounded_respects_budget() {
        let g = line_graph();
        let within = bounded_walk_times(&g, NodeId(0), 130.0);
        // Nodes 0 (0s), 1 (60s), 2 (120s).
        assert_eq!(within.len(), 3);
        assert!(within.iter().all(|&(_, t)| t <= 130.0));
        // Settle order is non-decreasing in time.
        for w in within.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn bounded_zero_budget_is_source_only() {
        let g = line_graph();
        let within = bounded_walk_times(&g, NodeId(2), 0.0);
        assert_eq!(within, vec![(NodeId(2), 0.0)]);
        assert!(bounded_walk_times(&g, NodeId(2), -1.0).is_empty());
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = line_graph();
        // Shortcut 0->4 exists; 4->0 must use the chain.
        assert_eq!(walk_time(&g, NodeId(4), NodeId(0)), Some(240.0));
    }

    #[test]
    fn targets_variant_matches_full() {
        let g = line_graph();
        let ts = [NodeId(1), NodeId(4)];
        let got = walk_times_to_targets(&g, NodeId(0), &ts);
        assert_eq!(got, vec![60.0, 240.0]);
    }

    #[test]
    fn targets_variant_handles_unreachable() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let island = b.add_node(Point::new(1000.0, 0.0));
        let g = b.build();
        let got = walk_times_to_targets(&g, a, &[island]);
        assert!(got[0].is_infinite());
    }
}

//! The naïve baseline: label every trip of `M_g` with real SPQs.
//!
//! This is both the ground truth for evaluation and the "Label Cost" column
//! of the paper's Table II.

use staq_access::ZoneMeasures;
use staq_synth::{City, PoiCategory};
use staq_todam::{LabelEngine, Todam, TodamSpec, ZoneStats};
use staq_transit::{AccessCost, CostKind};
use std::time::Instant;

/// Ground truth for one (city, category, cost).
pub struct NaiveResult {
    /// The gravity matrix that was labeled.
    pub matrix: Todam,
    /// Per-zone stats (`None` for zones without trips).
    pub stats: Vec<Option<ZoneStats>>,
    /// Measures of labeled zones.
    pub measures: Vec<ZoneMeasures>,
    /// Wall-clock seconds of the full labeling pass.
    pub label_secs: f64,
    /// Trips labeled.
    pub n_trips: usize,
}

impl NaiveResult {
    /// Builds `M_g` and labels all of it.
    pub fn compute(
        city: &City,
        spec: &TodamSpec,
        category: PoiCategory,
        cost: CostKind,
    ) -> NaiveResult {
        let matrix = spec.build(city, category);
        let cost_model = match cost {
            CostKind::Jt => AccessCost::jt(),
            CostKind::Gac => AccessCost::gac(),
        };
        let engine = LabelEngine::new(city, cost_model, spec.interval.clone());
        let t0 = Instant::now();
        let stats = engine.label_all(&matrix);
        let label_secs = t0.elapsed().as_secs_f64();
        let measures = ZoneMeasures::collect(&stats);
        let n_trips = matrix.n_trips();
        NaiveResult { matrix, stats, measures, label_secs, n_trips }
    }

    /// Estimated seconds per SPQ (Table II scaling).
    pub fn secs_per_trip(&self) -> f64 {
        if self.n_trips == 0 {
            return 0.0;
        }
        self.label_secs / self.n_trips as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::CityConfig;

    #[test]
    fn computes_ground_truth() {
        let city = City::generate(&CityConfig::tiny(42));
        let spec = TodamSpec { per_hour: 4, ..Default::default() };
        let r = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
        assert!(r.n_trips > 0);
        assert!(!r.measures.is_empty());
        assert!(r.label_secs > 0.0);
        assert!(r.secs_per_trip() > 0.0);
        for m in &r.measures {
            assert!(m.mac.is_finite() && m.mac > 0.0);
        }
    }

    #[test]
    fn gac_ground_truth_costs_more_than_jt() {
        let city = City::generate(&CityConfig::tiny(42));
        let spec = TodamSpec { per_hour: 4, ..Default::default() };
        let jt = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
        let gac = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Gac);
        let mean = |r: &NaiveResult| {
            r.measures.iter().map(|m| m.mac).sum::<f64>() / r.measures.len() as f64
        };
        assert!(mean(&gac) > mean(&jt));
    }
}

//! Streaming schedule deltas — the GTFS-RT-shaped mutations the live
//! update path ([`crate::FeedIndex::apply_delta`]) and the what-if overlay
//! engine share.
//!
//! A [`Delta`] is one self-contained edit to the transit world. The kinds
//! mirror the real-time feeds agencies publish (trip delays, cancellations,
//! detour-level route removals, advisory alerts) plus the repo's original
//! scenario edit — adding a bus route — recast as a delta so every edit
//! flows through one path.

use crate::model::{RouteId, TripId};
use serde::{Deserialize, Serialize};
use staq_geom::Point;

/// One schedule edit, applicable incrementally to a [`crate::FeedIndex`]
/// (mutating the live world) or overlaid copy-on-write onto a prepared
/// transit network (evaluating a counterfactual without mutating anything).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Delta {
    /// Every call of `trip` shifts `delay_secs` later (a uniform holding
    /// delay, the common GTFS-RT `TripUpdate` shape).
    TripDelay { trip: TripId, delay_secs: u32 },
    /// `trip` is cancelled: it makes no calls today or any other day.
    TripCancel { trip: TripId },
    /// Every trip of `route` is cancelled (the route record remains so
    /// dense ids stay stable).
    RouteRemove { route: RouteId },
    /// Advisory only: no schedule structure changes, nothing to invalidate.
    ServiceAlert { route: RouteId, message: String },
    /// A new weekday bus route calling at `stops` in order with the given
    /// peak headway — the former `AddBusRoute` scenario edit as a delta.
    AddRoute { stops: Vec<Point>, headway_s: u32 },
}

impl Delta {
    /// True when the delta changes schedule structure (and therefore
    /// invalidates routing artifacts); advisory alerts do not.
    pub fn is_structural(&self) -> bool {
        !matches!(self, Delta::ServiceAlert { .. })
    }

    /// Short label for metrics/log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            Delta::TripDelay { .. } => "trip_delay",
            Delta::TripCancel { .. } => "trip_cancel",
            Delta::RouteRemove { .. } => "route_remove",
            Delta::ServiceAlert { .. } => "service_alert",
            Delta::AddRoute { .. } => "add_route",
        }
    }
}

/// The synthetic timetable convention every dynamic route follows, shared
/// by the feed-mutating path ([`crate::FeedIndex::append_route`]) and the
/// copy-on-write network overlay so both produce the *same* schedule:
/// weekday service, departures 6:00–22:00 at the (≥120 s) headway, 15 s
/// dwell at every stop but the last, run times from stop geometry at
/// `1.25 × crow-flies / bus_speed` (min 30 s per hop).
#[derive(Debug, Clone, PartialEq)]
pub struct DynTimetable {
    /// Trip start times (seconds since midnight), shared by both directions.
    pub starts: Vec<u32>,
    /// Per-direction `(arrival, departure)` offsets from the trip start, in
    /// travel order (direction 1 runs the stops reversed).
    pub offsets: [Vec<(u32, u32)>; 2],
}

/// Computes the [`DynTimetable`] for a dynamic route calling at `stops`.
///
/// Errors on degenerate geometry — fewer than two stops (no hop to run)
/// or a zero-length hop (two consecutive stops at the same position) —
/// matching [`crate::FeedIndex::apply_delta`]'s contract of rejecting bad
/// input with an error instead of emitting a degenerate route.
pub fn dyn_route_timetable(
    stops: &[Point],
    headway_s: u32,
    bus_speed_mps: f64,
) -> Result<DynTimetable, String> {
    if stops.len() < 2 {
        return Err("a route needs at least two stops".into());
    }
    if stops.windows(2).any(|w| w[0].dist(&w[1]) == 0.0) {
        return Err("route has a zero-length hop (consecutive stops coincide)".into());
    }
    let runtimes: Vec<u32> = stops
        .windows(2)
        .map(|w| ((w[0].dist(&w[1]) * 1.25 / bus_speed_mps).round() as u32).max(30))
        .collect();
    let offsets = |runs: &[u32]| -> Vec<(u32, u32)> {
        let n = stops.len();
        let mut out = Vec::with_capacity(n);
        let mut clock = 0u32;
        for (i, _) in stops.iter().enumerate() {
            let arr = clock;
            let dep = if i + 1 < n { arr + 15 } else { arr };
            out.push((arr, dep));
            if i < runs.len() {
                clock = dep + runs[i];
            }
        }
        out
    };
    let fwd = offsets(&runtimes);
    let rev_runs: Vec<u32> = runtimes.iter().rev().copied().collect();
    let rev = offsets(&rev_runs);
    let mut starts = Vec::new();
    let mut t = 6 * 3600u32;
    while t < 22 * 3600 {
        starts.push(t);
        t += headway_s.max(120);
    }
    Ok(DynTimetable { starts, offsets: [fwd, rev] })
}

/// What applying a delta touched — the inputs downstream cache invalidation
/// needs to stay *precise* (only zones whose walkshed reaches a touched
/// stop get their hop trees rebuilt).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaOutcome {
    /// Positions of every stop whose departure board changed (call stops of
    /// delayed/cancelled trips, stops of an added route). Empty for
    /// advisory deltas.
    pub touched_stops: Vec<Point>,
    /// False only for advisory deltas: nothing structural changed.
    pub structural: bool,
}

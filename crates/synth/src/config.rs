//! City generation parameters and the paper's two presets.

use serde::{Deserialize, Serialize};

/// Per-category POI counts (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoiCounts {
    pub schools: u32,
    pub hospitals: u32,
    pub vax_centers: u32,
    pub job_centers: u32,
}

/// Everything needed to generate a [`crate::City`] deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Display name ("Birmingham").
    pub name: String,
    /// RNG seed; two configs differing only in seed produce statistically
    /// identical but point-wise different cities.
    pub seed: u64,
    /// Side of the square study area in meters.
    pub side_m: f64,
    /// Number of census-tract zones |Z|.
    pub n_zones: u32,
    /// POI counts per category.
    pub pois: PoiCounts,
    /// Number of urban density cores (≥ 1). The first is the city center;
    /// the rest are sub-centers.
    pub n_cores: u32,
    /// Road grid spacing in meters (node every `road_spacing_m`).
    pub road_spacing_m: f64,
    /// Fraction of grid edges randomly removed (0..1) to break symmetry.
    pub road_dropout: f64,
    /// Number of bus routes.
    pub n_routes: u32,
    /// Target stop spacing along a route, meters.
    pub stop_spacing_m: f64,
    /// Scheduled bus cruise speed in meters/second (includes dwell slack).
    pub bus_speed_mps: f64,
    /// Peak headway (seconds between buses) on an average route; off-peak is
    /// doubled, evening tripled. Route-level multipliers in [0.6, 1.8] are
    /// sampled so high- and low-frequency corridors both exist.
    pub peak_headway_s: u32,
    /// Total population, distributed over zones by density.
    pub population: u64,
}

impl CityConfig {
    /// Full-scale Birmingham analogue: 3217 zones, Table I POI counts.
    pub fn birmingham(seed: u64) -> Self {
        CityConfig {
            name: "Birmingham".into(),
            seed,
            side_m: 16_500.0,
            n_zones: 3217,
            pois: PoiCounts { schools: 874, hospitals: 56, vax_centers: 82, job_centers: 20 },
            n_cores: 3,
            road_spacing_m: 220.0,
            road_dropout: 0.12,
            n_routes: 110,
            stop_spacing_m: 400.0,
            bus_speed_mps: 5.6, // ~20 km/h scheduled incl. dwell
            peak_headway_s: 600,
            population: 1_140_000,
        }
    }

    /// Full-scale Coventry analogue: 1014 zones, Table I POI counts.
    pub fn coventry(seed: u64) -> Self {
        CityConfig {
            name: "Coventry".into(),
            seed,
            side_m: 10_000.0,
            n_zones: 1014,
            pois: PoiCounts { schools: 230, hospitals: 6, vax_centers: 22, job_centers: 2 },
            n_cores: 1,
            road_spacing_m: 220.0,
            road_dropout: 0.12,
            n_routes: 42,
            stop_spacing_m: 400.0,
            bus_speed_mps: 5.6,
            peak_headway_s: 600,
            population: 650_000,
        }
    }

    /// A small city for integration tests and examples: ~120 zones, a few
    /// routes, generates in well under a second.
    pub fn small(seed: u64) -> Self {
        CityConfig {
            name: "Smallville".into(),
            seed,
            side_m: 4_000.0,
            n_zones: 120,
            pois: PoiCounts { schools: 12, hospitals: 2, vax_centers: 4, job_centers: 2 },
            n_cores: 1,
            road_spacing_m: 250.0,
            road_dropout: 0.10,
            n_routes: 8,
            stop_spacing_m: 400.0,
            bus_speed_mps: 5.6,
            peak_headway_s: 600,
            population: 40_000,
        }
    }

    /// The smallest coherent city (unit tests): 16 zones, 2 routes.
    pub fn tiny(seed: u64) -> Self {
        CityConfig {
            name: "Tinytown".into(),
            seed,
            side_m: 1_600.0,
            n_zones: 16,
            pois: PoiCounts { schools: 3, hospitals: 1, vax_centers: 1, job_centers: 1 },
            n_cores: 1,
            road_spacing_m: 200.0,
            road_dropout: 0.05,
            n_routes: 2,
            stop_spacing_m: 350.0,
            bus_speed_mps: 5.6,
            peak_headway_s: 600,
            population: 5_000,
        }
    }

    /// Scales zone, POI and route counts by `f` (area by `f` as well, so
    /// densities stay constant). `scaled(1.0)` is the identity. Used by the
    /// reproduction binaries' `--scale` flag so paper-shape experiments run
    /// on laptop budgets.
    pub fn scaled(&self, f: f64) -> Self {
        assert!(f > 0.0 && f.is_finite(), "scale must be positive");
        let s = |v: u32| ((v as f64 * f).round() as u32).max(1);
        CityConfig {
            name: self.name.clone(),
            seed: self.seed,
            side_m: self.side_m * f.sqrt(),
            n_zones: s(self.n_zones),
            pois: PoiCounts {
                schools: s(self.pois.schools),
                hospitals: s(self.pois.hospitals),
                vax_centers: s(self.pois.vax_centers),
                job_centers: s(self.pois.job_centers),
            },
            n_cores: self.n_cores,
            road_spacing_m: self.road_spacing_m,
            road_dropout: self.road_dropout,
            n_routes: s(self.n_routes),
            stop_spacing_m: self.stop_spacing_m,
            bus_speed_mps: self.bus_speed_mps,
            peak_headway_s: self.peak_headway_s,
            population: (self.population as f64 * f).round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_counts() {
        let b = CityConfig::birmingham(1);
        assert_eq!(b.n_zones, 3217);
        assert_eq!(b.pois.schools, 874);
        assert_eq!(b.pois.job_centers, 20);
        let c = CityConfig::coventry(1);
        assert_eq!(c.n_zones, 1014);
        assert_eq!(c.pois.hospitals, 6);
        assert_eq!(c.pois.job_centers, 2);
    }

    #[test]
    fn scaled_identity() {
        let b = CityConfig::birmingham(1);
        assert_eq!(b.scaled(1.0), b);
    }

    #[test]
    fn scaled_down_preserves_minimums() {
        let b = CityConfig::birmingham(1).scaled(0.01);
        assert!(b.n_zones >= 32);
        assert_eq!(b.pois.job_centers, 1, "counts never drop to zero");
        assert!(b.side_m < 2000.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn scaled_rejects_zero() {
        CityConfig::tiny(1).scaled(0.0);
    }
}

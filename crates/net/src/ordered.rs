//! In-order response release for connections whose protocol version has
//! no request IDs.
//!
//! Pre-v4 wire clients match responses to requests purely by order, but
//! the worker pool completes requests in whatever order they finish. The
//! event loop assigns each decoded frame a per-connection sequence
//! number; workers submit the encoded response under that number and the
//! emitter releases frames to the [`ReplySink`] strictly in sequence,
//! parking early completions until the gap fills. v4 frames (explicit
//! request IDs) bypass this entirely and go straight to the sink.

use crate::reactor::{ConnId, ReplySink};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

pub struct OrderedOut {
    conn: ConnId,
    sink: ReplySink,
    state: Mutex<OrderState>,
}

struct OrderState {
    next_assign: u64,
    next_emit: u64,
    parked: BTreeMap<u64, Bytes>,
}

impl OrderedOut {
    pub fn new(conn: ConnId, sink: ReplySink) -> Arc<OrderedOut> {
        Arc::new(OrderedOut {
            conn,
            sink,
            state: Mutex::new(OrderState { next_assign: 0, next_emit: 0, parked: BTreeMap::new() }),
        })
    }

    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Reserves the next in-order slot for a just-decoded request.
    pub fn assign(&self) -> u64 {
        let mut s = self.state.lock();
        let seq = s.next_assign;
        s.next_assign += 1;
        seq
    }

    /// Submits the completed frame for `seq`; releases it plus any
    /// parked successors the moment the sequence is contiguous.
    pub fn submit(&self, seq: u64, frame: Bytes) {
        let mut s = self.state.lock();
        if seq != s.next_emit {
            s.parked.insert(seq, frame);
            return;
        }
        self.sink.send(self.conn, frame);
        s.next_emit += 1;
        while let Some(f) = {
            let next = s.next_emit;
            s.parked.remove(&next)
        } {
            self.sink.send(self.conn, f);
            s.next_emit += 1;
        }
    }

    /// For frames that carry their own request ID (v4+): no ordering.
    pub fn submit_unordered(&self, frame: Bytes) {
        self.sink.send(self.conn, frame);
    }
}

//! Snapping arbitrary points to road nodes.
//!
//! Zone centroids, POIs, and bus stops all live off-network; every
//! interaction with the graph starts by finding the nearest node. A kd-tree
//! over node positions answers each snap in O(log n).

use crate::graph::{NodeId, RoadGraph};
use staq_geom::{KdTree, Point};

/// A reusable point→node snapper for one graph.
#[derive(Debug, Clone)]
pub struct NodeSnapper {
    tree: KdTree,
}

impl NodeSnapper {
    /// Indexes all nodes of `g`.
    pub fn new(g: &RoadGraph) -> Self {
        NodeSnapper { tree: KdTree::build(&g.node_points()) }
    }

    /// Nearest node to `p`, with the crow-flies gap in meters. `None` only
    /// for an empty graph.
    pub fn snap(&self, p: &Point) -> Option<(NodeId, f64)> {
        self.tree.nearest(p).map(|n| (NodeId(n.item), n.dist()))
    }

    /// Nearest node, panicking on an empty graph — the common case where the
    /// graph is known non-empty by construction.
    pub fn snap_unchecked(&self, p: &Point) -> NodeId {
        self.snap(p).expect("snapping against an empty road graph").0
    }

    /// Snaps a batch of points.
    pub fn snap_all(&self, pts: &[Point]) -> Vec<NodeId> {
        pts.iter().map(|p| self.snap_unchecked(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;

    fn graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(100.0, 0.0));
        b.add_node(Point::new(0.0, 100.0));
        b.build()
    }

    #[test]
    fn snaps_to_nearest() {
        let g = graph();
        let s = NodeSnapper::new(&g);
        let (n, d) = s.snap(&Point::new(90.0, 5.0)).unwrap();
        assert_eq!(n, NodeId(1));
        assert!((d - (10.0f64 * 10.0 + 25.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn exact_hit_has_zero_gap() {
        let g = graph();
        let s = NodeSnapper::new(&g);
        let (n, d) = s.snap(&Point::new(0.0, 100.0)).unwrap();
        assert_eq!(n, NodeId(2));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn batch_snap() {
        let g = graph();
        let s = NodeSnapper::new(&g);
        let out = s.snap_all(&[Point::new(1.0, 1.0), Point::new(99.0, 1.0)]);
        assert_eq!(out, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn empty_graph_returns_none() {
        let g = RoadGraphBuilder::new().build();
        let s = NodeSnapper::new(&g);
        assert!(s.snap(&Point::new(0.0, 0.0)).is_none());
    }
}

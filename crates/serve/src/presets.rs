//! City presets shared by the `serve` daemon and the load generator.

use staq_core::{AccessEngine, PipelineConfig};
use staq_ml::ModelKind;
use staq_synth::{City, CityConfig};
use staq_todam::TodamSpec;

/// Which synthetic city the server hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityPreset {
    /// Scaled Birmingham analogue (paper §V-A).
    Birmingham,
    /// Scaled Coventry analogue.
    Coventry,
    /// Small fixed-size city for tests and demos (fast to build).
    Test,
}

impl CityPreset {
    /// Parses the `--city` flag value.
    pub fn parse(s: &str) -> Option<CityPreset> {
        match s {
            "birmingham" => Some(CityPreset::Birmingham),
            "coventry" => Some(CityPreset::Coventry),
            "test" => Some(CityPreset::Test),
            _ => None,
        }
    }

    /// Generates the city. `scale` applies to the paper-size presets and
    /// is ignored by `test` (which is already small).
    pub fn generate(self, scale: f64, seed: u64) -> City {
        let cfg = match self {
            CityPreset::Birmingham => CityConfig::birmingham(seed).scaled(scale),
            CityPreset::Coventry => CityConfig::coventry(seed).scaled(scale),
            CityPreset::Test => CityConfig::small(seed),
        };
        City::generate(&cfg)
    }

    /// Builds an engine with a serving-appropriate pipeline config: OLS
    /// keeps cold-cache latencies low; the paper's β sweet spot (~0.2)
    /// balances label cost against accuracy.
    pub fn engine(self, scale: f64, seed: u64) -> AccessEngine {
        let city = self.generate(scale, seed);
        let config = PipelineConfig {
            beta: 0.2,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        AccessEngine::new(city, config)
    }
}

impl std::fmt::Display for CityPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CityPreset::Birmingham => "birmingham",
            CityPreset::Coventry => "coventry",
            CityPreset::Test => "test",
        })
    }
}
